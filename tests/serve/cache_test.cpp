/**
 * ResultCache hardening battery: verify-on-read (CRC sidecar and the
 * identity-hash fallback for legacy entries), quarantine of corrupt
 * artifacts into corrupt/ (a flipped bit is a cache miss plus a
 * preserved specimen, never served bytes), sidecar healing, LRU
 * eviction under a byte budget, and pin exemption for live campaigns.
 */

#include "serve/cache.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"
#include "util/fsio.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace nocalert::serve {
namespace {

namespace fs = std::filesystem;

fault::CampaignConfig
tinySpec(std::uint64_t traffic_seed)
{
    fault::CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = traffic_seed;
    config.warmup = 80;
    config.observeWindow = 400;
    config.drainLimit = 2000;
    config.maxSites = 3;
    config.runForever = false;
    return config;
}

/** A minimal artifact whose config block hashes to its own key —
 *  enough for identity verification without running a campaign. */
std::string
artifactFor(const fault::CampaignConfig &spec)
{
    JsonValue doc;
    doc.set("config", fault::toJson(spec));
    doc.set("runs", 0);
    return doc.dump();
}

class CacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_cache_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    CacheConfig budget(std::uint64_t max_bytes) const
    {
        return CacheConfig{dir_.string(), max_bytes};
    }

    /** Overwrite one byte of @p path in place (damage injection). */
    static void flipByteAt(const std::string &path, std::size_t at)
    {
        const auto bytes = readFileBytes(path);
        ASSERT_TRUE(bytes.has_value()) << path;
        ASSERT_LT(at, bytes->size());
        std::string damaged = *bytes;
        damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file.write(damaged.data(),
                   static_cast<std::streamsize>(damaged.size()));
    }

    fs::path dir_;
};

TEST_F(CacheTest, StoreWritesArtifactAndCrcSidecar)
{
    ResultCache cache(budget(0));
    ASSERT_TRUE(cache.store("k1", "artifact bytes"));
    const auto sidecar = readFileBytes(cache.sidecarPath("k1"));
    ASSERT_TRUE(sidecar.has_value());
    EXPECT_EQ(*sidecar, crc32Hex(crc32("artifact bytes")) + "\n");

    const auto fetched = cache.fetch("k1");
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, "artifact bytes");
    EXPECT_EQ(cache.stats().entries, 1u);
    EXPECT_EQ(cache.stats().bytesStored,
              std::string("artifact bytes").size());
}

TEST_F(CacheTest, BitFlippedArtifactIsQuarantinedNotServed)
{
    // Regression: a single flipped bit in a cached artifact must read
    // as a miss and move the specimen to corrupt/ — never be served,
    // never crash the daemon.
    const std::string artifact = artifactFor(tinySpec(11));
    {
        ResultCache cache(budget(0));
        ASSERT_TRUE(cache.store("k1", artifact));
    }
    ResultCache reopened(budget(0));
    flipByteAt(reopened.artifactPath("k1"), artifact.size() / 2);

    FatalThrowScope guard; // A quarantine must not fatal.
    EXPECT_FALSE(reopened.fetch("k1").has_value());
    EXPECT_EQ(reopened.stats().quarantined, 1u);
    EXPECT_EQ(reopened.stats().entries, 0u);
    EXPECT_FALSE(fs::exists(reopened.artifactPath("k1")));
    EXPECT_TRUE(fs::exists(fs::path(reopened.corruptDirectory()) /
                           "k1.json"));
    // The miss is durable: a later fetch is still a miss, and a
    // re-store of good bytes works.
    EXPECT_FALSE(reopened.fetch("k1").has_value());
    ASSERT_TRUE(reopened.store("k1", artifact));
    EXPECT_EQ(reopened.fetch("k1"), artifact);
}

TEST_F(CacheTest, CorruptSidecarQuarantinesToo)
{
    {
        ResultCache cache(budget(0));
        ASSERT_TRUE(cache.store("k1", "payload"));
    }
    ResultCache reopened(budget(0));
    flipByteAt(reopened.sidecarPath("k1"), 0);
    FatalThrowScope guard;
    EXPECT_FALSE(reopened.fetch("k1").has_value());
    EXPECT_EQ(reopened.stats().quarantined, 1u);
}

TEST_F(CacheTest, LegacySidecarlessEntryIsVerifiedAndHealed)
{
    const fault::CampaignConfig spec = tinySpec(13);
    const std::string key = fault::campaignArtifactHash(spec);
    const std::string artifact = artifactFor(spec);

    ResultCache cache(budget(0));
    // Simulate an entry inherited from a pre-CRC store: artifact on
    // disk, no sidecar.
    ASSERT_TRUE(writeFileAtomic(cache.artifactPath(key), artifact));
    ASSERT_FALSE(fs::exists(cache.sidecarPath(key)));

    const auto fetched = cache.fetch(key);
    ASSERT_TRUE(fetched.has_value());
    EXPECT_EQ(*fetched, artifact);
    // First read upgraded the entry to CRC coverage.
    const auto sidecar = readFileBytes(cache.sidecarPath(key));
    ASSERT_TRUE(sidecar.has_value());
    EXPECT_EQ(*sidecar, crc32Hex(crc32(artifact)) + "\n");
}

TEST_F(CacheTest, MisfiledLegacyEntryIsQuarantined)
{
    // An artifact stored under a key that is not its own identity
    // hash fails the fallback check.
    ResultCache cache(budget(0));
    ASSERT_TRUE(writeFileAtomic(cache.artifactPath("wrongkey"),
                                artifactFor(tinySpec(17))));
    FatalThrowScope guard;
    EXPECT_FALSE(cache.fetch("wrongkey").has_value());
    EXPECT_EQ(cache.stats().quarantined, 1u);
    EXPECT_TRUE(fs::exists(fs::path(cache.corruptDirectory()) /
                           "wrongkey.json"));
}

TEST_F(CacheTest, EvictionIsLruUnderTheByteBudget)
{
    ResultCache cache(budget(25));
    const std::string ten(10, 'x');
    ASSERT_TRUE(cache.store("k1", ten));
    ASSERT_TRUE(cache.store("k2", ten));
    EXPECT_EQ(cache.stats().evictions, 0u);
    // Touch k1 so k2 becomes the LRU tail.
    EXPECT_TRUE(cache.fetch("k1").has_value());
    ASSERT_TRUE(cache.store("k3", ten)); // 30 bytes > 25: evict k2.
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.stats().entries, 2u);
    EXPECT_LE(cache.stats().bytesStored, 25u);
    EXPECT_FALSE(fs::exists(cache.artifactPath("k2")));
    EXPECT_FALSE(fs::exists(cache.sidecarPath("k2")));
    EXPECT_TRUE(cache.fetch("k1").has_value());
    EXPECT_TRUE(cache.fetch("k3").has_value());
}

TEST_F(CacheTest, PinnedEntriesAreExemptFromEviction)
{
    ResultCache cache(budget(15));
    const std::string ten(10, 'x');
    ASSERT_TRUE(cache.store("live", ten));
    cache.pin("live");
    ASSERT_TRUE(cache.store("other", ten)); // Over budget.
    // "live" was the LRU tail but is pinned: "other" is the victim.
    EXPECT_TRUE(fs::exists(cache.artifactPath("live")));
    EXPECT_FALSE(fs::exists(cache.artifactPath("other")));
    cache.unpin("live");
    ASSERT_TRUE(cache.store("third", ten));
    EXPECT_FALSE(fs::exists(cache.artifactPath("live")));
}

TEST_F(CacheTest, RestartInheritsTheStoreAndItsOccupancy)
{
    {
        ResultCache cache(budget(0));
        ASSERT_TRUE(cache.store("k1", "aaaa"));
        ASSERT_TRUE(cache.store("k2", "bbbbbb"));
    }
    ResultCache reopened(budget(0));
    EXPECT_EQ(reopened.stats().entries, 2u);
    EXPECT_EQ(reopened.stats().bytesStored, 10u);
    EXPECT_EQ(reopened.memoryEntries(), 0u); // Disk-seeded, lazy.
    EXPECT_EQ(reopened.fetch("k1"), "aaaa");
    EXPECT_EQ(reopened.fetch("k2"), "bbbbbb");
}

TEST_F(CacheTest, TempDebrisAndCheckpointsAreNotIndexed)
{
    {
        ResultCache cache(budget(0));
        ASSERT_TRUE(cache.store("k1", "real"));
        ASSERT_TRUE(writeFileAtomic(cache.checkpointPath("k1"),
                                    "checkpoint"));
        std::ofstream((dir_ / "k2.json.tmp.123").string())
            << "torn temp";
    }
    ResultCache reopened(budget(0));
    EXPECT_EQ(reopened.stats().entries, 1u);
}

} // namespace
} // namespace nocalert::serve
