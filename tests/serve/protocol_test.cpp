/**
 * Protocol robustness battery for the campaign service wire layer:
 * framing (truncated, chunked, interleaved, oversized payloads),
 * request parsing (malformed JSON, wrong shapes, bad specs — every
 * failure a typed error response, never a crash), and response
 * builders (lossless artifact embedding).
 */

#include "serve/protocol.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "fault/serialize.hpp"
#include "serve/journal.hpp"

namespace nocalert::serve {
namespace {

// ---- LineFramer ----

std::vector<LineFramer::Line>
drain(LineFramer &framer)
{
    std::vector<LineFramer::Line> lines;
    while (const auto line = framer.next())
        lines.push_back(*line);
    return lines;
}

TEST(LineFramer, SplitsCompleteLines)
{
    LineFramer framer;
    framer.feed("one\ntwo\nthree");
    const auto lines = drain(framer);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(lines[0].text, "one");
    EXPECT_EQ(lines[1].text, "two");
    EXPECT_TRUE(framer.partialLine()); // "three" is still truncated.
    framer.feed("\n");
    const auto rest = drain(framer);
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest[0].text, "three");
    EXPECT_FALSE(framer.partialLine());
}

TEST(LineFramer, ReassemblesByteByByteChunks)
{
    // A peer may write one byte per send; framing must not care.
    LineFramer framer;
    const std::string message = "{\"type\":\"ping\"}\n";
    std::vector<LineFramer::Line> lines;
    for (char byte : message) {
        framer.feed(std::string_view(&byte, 1));
        for (const auto &line : drain(framer))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "{\"type\":\"ping\"}");
    EXPECT_FALSE(lines[0].oversized);
}

TEST(LineFramer, EmptyFeedsAreHarmlessAtAnyPoint)
{
    // An EINTR-interrupted read retries and may hand the framer zero
    // bytes; interleaving empty feeds must never disturb framing.
    LineFramer framer;
    const std::string message = "{\"type\":\"ping\"}\n";
    std::vector<LineFramer::Line> lines;
    for (char byte : message) {
        framer.feed(std::string_view());
        framer.feed(std::string_view(&byte, 1));
        framer.feed("");
        for (const auto &line : drain(framer))
            lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "{\"type\":\"ping\"}");
    EXPECT_FALSE(framer.partialLine());
}

TEST(LineFramer, JournalRecordSurvivesASplitAtEveryBoundary)
{
    // The chaos harness feeds journal-framed records ("NJ1 <crc8>
    // <json>\n") through this framer; a chunk boundary inside the
    // magic, inside the CRC field, at the field separators, or just
    // before the newline must all reassemble to the same line.
    JournalRecord record;
    record.op = JournalRecord::Op::Start;
    record.id = "abc123";
    const std::string line = SubmissionJournal::encodeRecord(record);
    const std::string expected = line.substr(0, line.size() - 1);
    for (std::size_t split = 0; split <= line.size(); ++split) {
        LineFramer framer;
        framer.feed(std::string_view(line).substr(0, split));
        framer.feed(std::string_view(line).substr(split));
        const auto lines = drain(framer);
        ASSERT_EQ(lines.size(), 1u) << "split at " << split;
        EXPECT_EQ(lines[0].text, expected) << "split at " << split;
        EXPECT_FALSE(lines[0].oversized);
        const auto decoded =
            SubmissionJournal::decodeLine(lines[0].text);
        ASSERT_TRUE(decoded.has_value()) << "split at " << split;
        EXPECT_EQ(decoded->id, "abc123");
    }
}

TEST(LineFramer, EmptyLinesAreDelivered)
{
    LineFramer framer;
    framer.feed("\n\nx\n");
    const auto lines = drain(framer);
    ASSERT_EQ(lines.size(), 3u);
    EXPECT_EQ(lines[0].text, "");
    EXPECT_EQ(lines[1].text, "");
    EXPECT_EQ(lines[2].text, "x");
}

TEST(LineFramer, OversizedCompleteLineReportsDroppedBytes)
{
    LineFramer framer(8);
    framer.feed("0123456789ABCDEF\nnext\n");
    const auto lines = drain(framer);
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_TRUE(lines[0].oversized);
    EXPECT_EQ(lines[0].bytesDropped, 16u);
    // The stream resyncs at the newline: the next request is intact.
    EXPECT_FALSE(lines[1].oversized);
    EXPECT_EQ(lines[1].text, "next");
}

TEST(LineFramer, UnboundedLineIsReportedOnceAndDiscarded)
{
    LineFramer framer(8);
    framer.feed("AAAAAAAAAAAAAAAA"); // 16 bytes, no newline yet.
    auto first = framer.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_TRUE(first->oversized);
    EXPECT_EQ(first->bytesDropped, 16u);

    // The continuation of the hostile line must not re-report...
    framer.feed("BBBBBBBBBBBBBBBB");
    EXPECT_FALSE(framer.next().has_value());
    EXPECT_TRUE(framer.partialLine());

    // ...and the next newline ends discard mode: later requests pass.
    framer.feed("CCC\nok\n");
    const auto lines = drain(framer);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0].text, "ok");
    EXPECT_FALSE(framer.partialLine());
}

TEST(LineFramer, InterleavedChunksAcrossManyLines)
{
    LineFramer framer;
    framer.feed("{\"a\"");
    EXPECT_FALSE(framer.next().has_value());
    framer.feed(":1}\n{\"b\"");
    auto line = framer.next();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->text, "{\"a\":1}");
    EXPECT_FALSE(framer.next().has_value());
    framer.feed(":2}\n");
    line = framer.next();
    ASSERT_TRUE(line.has_value());
    EXPECT_EQ(line->text, "{\"b\":2}");
}

TEST(LineFramer, FuzzedChunkingNeverLosesBytes)
{
    // Deterministic fuzz: one long known stream, fed in random-sized
    // chunks, must reproduce exactly the same line sequence as a
    // single feed — and never crash, whatever the chunk boundaries.
    std::string stream;
    std::vector<std::string> expected;
    for (int i = 0; i < 64; ++i) {
        std::string line = "line-" + std::to_string(i);
        if (i % 7 == 0)
            line += std::string(i, '#');
        expected.push_back(line);
        stream += line + "\n";
    }

    std::mt19937 rng(1234);
    for (int round = 0; round < 50; ++round) {
        LineFramer framer;
        std::vector<std::string> got;
        std::size_t at = 0;
        while (at < stream.size()) {
            std::uniform_int_distribution<std::size_t> pick(
                1, std::min<std::size_t>(9, stream.size() - at));
            const std::size_t take = pick(rng);
            framer.feed(std::string_view(stream).substr(at, take));
            at += take;
            while (const auto line = framer.next()) {
                ASSERT_FALSE(line->oversized);
                got.push_back(line->text);
            }
        }
        ASSERT_EQ(got, expected) << "round " << round;
        EXPECT_FALSE(framer.partialLine());
    }
}

// ---- parseRequestLine ----

std::string
errorCodeOf(std::string_view line)
{
    JsonValue error;
    const auto request = parseRequestLine(line, &error);
    if (request.has_value())
        return "(parsed)";
    const JsonValue *code = error.find("code");
    return code && code->isString() ? code->string() : "(no code)";
}

TEST(ParseRequest, MalformedJsonIsTyped)
{
    EXPECT_EQ(errorCodeOf("not json"), kErrBadJson);
    EXPECT_EQ(errorCodeOf("{\"type\":"), kErrBadJson);
    EXPECT_EQ(errorCodeOf(""), kErrBadJson);
    EXPECT_EQ(errorCodeOf("{\"type\":\"ping\"} trailing"), kErrBadJson);
}

TEST(ParseRequest, WrongShapesAreBadRequests)
{
    EXPECT_EQ(errorCodeOf("[1,2,3]"), kErrBadRequest);
    EXPECT_EQ(errorCodeOf("42"), kErrBadRequest);
    EXPECT_EQ(errorCodeOf("{}"), kErrBadRequest);
    EXPECT_EQ(errorCodeOf("{\"type\":7}"), kErrBadRequest);
    EXPECT_EQ(errorCodeOf("{\"type\":\"warp\"}"), kErrUnknownType);
}

TEST(ParseRequest, IdBearingRequestsRequireAnId)
{
    for (const char *type : {"status", "watch", "cancel", "result"}) {
        const std::string no_id =
            std::string("{\"type\":\"") + type + "\"}";
        EXPECT_EQ(errorCodeOf(no_id), kErrBadRequest) << type;
        const std::string bad_id =
            std::string("{\"type\":\"") + type + "\",\"id\":3}";
        EXPECT_EQ(errorCodeOf(bad_id), kErrBadRequest) << type;
    }
}

TEST(ParseRequest, SubmitRequiresAParsableConfig)
{
    EXPECT_EQ(errorCodeOf("{\"type\":\"submit\"}"), kErrBadRequest);
    EXPECT_EQ(errorCodeOf("{\"type\":\"submit\",\"config\":{}}"),
              kErrBadSpec);
    EXPECT_EQ(errorCodeOf("{\"type\":\"submit\",\"config\":\"x\"}"),
              kErrBadSpec);
}

TEST(ParseRequest, ValidRequestsParse)
{
    JsonValue error;
    auto ping = parseRequestLine("{\"type\":\"ping\"}", &error);
    ASSERT_TRUE(ping.has_value());
    EXPECT_EQ(ping->type, RequestType::Ping);

    auto status =
        parseRequestLine("{\"type\":\"status\",\"id\":\"abc\"}", &error);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->type, RequestType::Status);
    EXPECT_EQ(status->id, "abc");

    // A real config round-trips through the same serializer the
    // artifacts use.
    fault::CampaignConfig config;
    config.workload.synthetic.seed = 99;
    JsonValue submit;
    submit.set("type", "submit");
    submit.set("config", fault::toJson(config));
    submit.set("detach", true);
    auto parsed = parseRequestLine(submit.dump(), &error);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, RequestType::Submit);
    ASSERT_TRUE(parsed->config.has_value());
    EXPECT_EQ(parsed->config->workload.synthetic.seed, 99u);
    EXPECT_TRUE(parsed->detach);
}

TEST(ParseRequest, TruncatedPrefixesOfAValidSubmitNeverCrash)
{
    fault::CampaignConfig config;
    JsonValue submit;
    submit.set("type", "submit");
    submit.set("config", fault::toJson(config));
    const std::string full = submit.dump();

    // Every proper prefix must come back as a typed error (truncated
    // JSON), and the full document must parse.
    for (std::size_t length = 0; length < full.size(); ++length) {
        JsonValue error;
        const auto request = parseRequestLine(
            std::string_view(full).substr(0, length), &error);
        ASSERT_FALSE(request.has_value()) << "prefix length " << length;
        const JsonValue *code = error.find("code");
        ASSERT_NE(code, nullptr) << "prefix length " << length;
    }
    JsonValue error;
    EXPECT_TRUE(parseRequestLine(full, &error).has_value());
}

TEST(ParseRequest, FuzzedBytesAlwaysYieldRequestOrTypedError)
{
    std::mt19937 rng(99);
    std::uniform_int_distribution<int> byte(0, 255);
    std::uniform_int_distribution<int> length(0, 120);
    for (int round = 0; round < 2000; ++round) {
        std::string line;
        const int n = length(rng);
        for (int i = 0; i < n; ++i)
            line.push_back(static_cast<char>(byte(rng)));
        JsonValue error;
        const auto request = parseRequestLine(line, &error);
        if (!request.has_value()) {
            const JsonValue *code = error.find("code");
            ASSERT_NE(code, nullptr) << "round " << round;
            ASSERT_TRUE(code->isString());
        }
    }
}

// ---- Response builders ----

TEST(Responses, EveryResponseCarriesItsType)
{
    exec::TelemetryDelta delta;
    const std::pair<JsonValue, const char *> cases[] = {
        {errorResponse("c", "m"), "error"},
        {pongResponse(), "pong"},
        {submittedResponse("i", CampaignState::Queued, false, false),
         "submitted"},
        {statusResponse("i", CampaignState::Running, 1, 2, false, ""),
         "status"},
        {watchingResponse("i"), "watching"},
        {telemetryEvent("i", delta), "telemetry"},
        {doneEvent("i", CampaignState::Complete), "done"},
        {cancelledResponse("i"), "cancelled"},
        {resultResponse("i", "bytes"), "result"},
        {byeResponse(), "bye"},
    };
    for (const auto &[response, type] : cases) {
        const JsonValue *field = response.find("type");
        ASSERT_NE(field, nullptr) << type;
        EXPECT_EQ(field->string(), type);
        // Every response must survive its own wire round trip.
        const auto reparsed = parseJson(response.dump());
        ASSERT_TRUE(reparsed.has_value()) << type;
        EXPECT_EQ(*reparsed, response) << type;
    }
}

TEST(Responses, ArtifactEmbeddingIsLossless)
{
    // Artifacts are JSON documents full of quotes, newlines, and (in
    // principle) any byte; embedding one as a JSON string must give
    // back the identical bytes after a wire round trip.
    std::string artifact = "{\n  \"quote\": \"\\\"\",\n  \"tab\": ";
    artifact += '\t';
    for (int byte = 1; byte < 128; ++byte)
        artifact += static_cast<char>(byte);
    artifact += "\n}\n";

    const JsonValue response = resultResponse("id", artifact);
    const auto reparsed = parseJson(response.dump());
    ASSERT_TRUE(reparsed.has_value());
    const JsonValue *extracted = reparsed->find("artifact");
    ASSERT_NE(extracted, nullptr);
    EXPECT_EQ(extracted->string(), artifact);
}

TEST(Responses, StateNamesAreStable)
{
    EXPECT_STREQ(campaignStateName(CampaignState::Queued), "queued");
    EXPECT_STREQ(campaignStateName(CampaignState::Running), "running");
    EXPECT_STREQ(campaignStateName(CampaignState::Complete), "complete");
    EXPECT_STREQ(campaignStateName(CampaignState::Cancelled),
                 "cancelled");
    EXPECT_STREQ(campaignStateName(CampaignState::Failed), "failed");
}

} // namespace
} // namespace nocalert::serve
