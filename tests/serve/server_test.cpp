/**
 * CampaignServer end-to-end battery over real AF_UNIX sockets: the
 * request/response contract, the concurrency stress path (many clients
 * multiplexed onto one scheduler, byte-identical artifacts for
 * identical specs), the abrupt-disconnect contract, and hostile-input
 * survival — all in-process so the registry's counters stay visible.
 */

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/serialize.hpp"

namespace nocalert::serve {
namespace {

namespace fs = std::filesystem;

fault::CampaignConfig
tinySpec(std::uint64_t traffic_seed, unsigned sites = 3)
{
    fault::CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = traffic_seed;
    config.warmup = 80;
    config.observeWindow = 400;
    config.drainLimit = 2000;
    config.maxSites = sites;
    config.runForever = false;
    return config;
}

std::string
directArtifact(const fault::CampaignConfig &spec)
{
    fault::FaultCampaign campaign(spec);
    const fault::CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    return fault::writeCampaignJson(result);
}

JsonValue
submitRequest(const fault::CampaignConfig &spec, bool detach)
{
    JsonValue json;
    json.set("type", "submit");
    json.set("config", fault::toJson(spec));
    json.set("detach", detach);
    return json;
}

JsonValue
idRequest(const char *type, const std::string &id)
{
    JsonValue json;
    json.set("type", type);
    json.set("id", id);
    return json;
}

/** A blocking raw-socket client speaking the NDJSON protocol. */
class RawClient
{
  public:
    explicit RawClient(const std::string &socket_path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0)
            return;
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        std::memcpy(address.sun_path, socket_path.c_str(),
                    socket_path.size() + 1);
        // The daemon binds before tests connect, so no retry loop.
        if (::connect(fd_,
                      reinterpret_cast<const sockaddr *>(&address),
                      sizeof(address)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawClient() { close(); }

    RawClient(const RawClient &) = delete;
    RawClient &operator=(const RawClient &) = delete;

    bool connected() const { return fd_ >= 0; }

    void close()
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    bool sendRaw(std::string_view bytes)
    {
        while (!bytes.empty()) {
            const ssize_t sent =
                ::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            bytes.remove_prefix(static_cast<std::size_t>(sent));
        }
        return true;
    }

    bool send(const JsonValue &request)
    {
        return sendRaw(request.dump() + "\n");
    }

    /** Next response line as JSON; Null at EOF. */
    JsonValue readResponse()
    {
        for (;;) {
            if (const auto line = framer_.next()) {
                if (line->oversized)
                    continue;
                const auto json = parseJson(line->text);
                EXPECT_TRUE(json.has_value()) << line->text;
                return json ? *json : JsonValue();
            }
            char buffer[4096];
            const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
            if (got < 0 && errno == EINTR)
                continue;
            if (got <= 0)
                return JsonValue();
            framer_.feed(std::string_view(
                buffer, static_cast<std::size_t>(got)));
        }
    }

    /** One request, one response. */
    JsonValue call(const JsonValue &request)
    {
        EXPECT_TRUE(send(request));
        return readResponse();
    }

    std::string typeOf(const JsonValue &response)
    {
        const JsonValue *type = response.find("type");
        return type && type->isString() ? type->string() : "(none)";
    }

  private:
    int fd_ = -1;
    LineFramer framer_;
};

class ServerTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_server_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        server_.reset();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /** Start an in-process daemon; returns its socket path. */
    std::string startServer(unsigned quantum = 4,
                            std::size_t max_line = kDefaultMaxLineBytes)
    {
        ServerConfig config;
        config.socketPath = (dir_ / "sock").string();
        config.cacheDir = (dir_ / "cache").string();
        config.registry.jobs = 1;
        config.registry.quantum = quantum;
        config.registry.checkpointEvery = 1;
        config.maxLineBytes = max_line;
        server_ = std::make_unique<CampaignServer>(config);
        std::string error;
        EXPECT_TRUE(server_->start(&error)) << error;
        return config.socketPath;
    }

    /** Poll a campaign until it reaches a terminal state. */
    std::string awaitTerminal(RawClient &client, const std::string &id)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(60);
        for (;;) {
            const JsonValue status =
                client.call(idRequest("status", id));
            const JsonValue *state = status.find("state");
            if (state != nullptr) {
                const std::string &name = state->string();
                if (name != "queued" && name != "running")
                    return name;
            }
            if (std::chrono::steady_clock::now() > deadline)
                return "(timeout)";
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
    }

    fs::path dir_;
    std::unique_ptr<CampaignServer> server_;
};

TEST_F(ServerTest, PingPong)
{
    const std::string socket = startServer();
    RawClient client(socket);
    ASSERT_TRUE(client.connected());
    JsonValue ping;
    ping.set("type", "ping");
    EXPECT_EQ(client.typeOf(client.call(ping)), "pong");
}

TEST_F(ServerTest, SubmitWatchResultMatchesTheLibraryRun)
{
    const std::string socket = startServer();
    const fault::CampaignConfig spec = tinySpec(41);

    RawClient client(socket);
    ASSERT_TRUE(client.connected());

    const JsonValue submitted = client.call(submitRequest(spec, false));
    ASSERT_EQ(client.typeOf(submitted), "submitted") << submitted.dump();
    const std::string id = submitted.find("id")->string();

    // Watch until the terminal event; everything before it must be
    // telemetry for this campaign.
    ASSERT_EQ(client.typeOf(client.call(idRequest("watch", id))),
              "watching");
    for (;;) {
        const JsonValue event = client.readResponse();
        const std::string type = client.typeOf(event);
        if (type == "telemetry") {
            EXPECT_EQ(event.find("id")->string(), id);
            continue;
        }
        ASSERT_EQ(type, "done") << event.dump();
        EXPECT_EQ(event.find("state")->string(), "complete");
        break;
    }

    const JsonValue result = client.call(idRequest("result", id));
    ASSERT_EQ(client.typeOf(result), "result") << result.dump();
    EXPECT_EQ(result.find("artifact")->string(), directArtifact(spec));
}

TEST_F(ServerTest, ConcurrentClientsGetByteIdenticalArtifacts)
{
    const std::string socket = startServer(/*quantum=*/2);

    // Three distinct specs, two clients per spec submitting the same
    // campaign concurrently: duplicates must coalesce or cache-hit,
    // and every client must read identical bytes for its spec.
    const std::uint64_t seeds[] = {51, 52, 53};
    constexpr int kClientsPerSpec = 2;

    std::vector<std::string> artifacts(std::size(seeds) *
                                       kClientsPerSpec);
    std::vector<std::thread> clients;
    for (std::size_t s = 0; s < std::size(seeds); ++s) {
        for (int c = 0; c < kClientsPerSpec; ++c) {
            clients.emplace_back([&, s, c] {
                RawClient client(socket);
                ASSERT_TRUE(client.connected());
                const fault::CampaignConfig spec = tinySpec(seeds[s]);
                const JsonValue submitted =
                    client.call(submitRequest(spec, false));
                ASSERT_EQ(client.typeOf(submitted), "submitted")
                    << submitted.dump();
                const std::string id = submitted.find("id")->string();
                ASSERT_EQ(awaitTerminal(client, id), "complete");
                const JsonValue result =
                    client.call(idRequest("result", id));
                ASSERT_EQ(client.typeOf(result), "result")
                    << result.dump();
                artifacts[s * kClientsPerSpec + c] =
                    result.find("artifact")->string();
            });
        }
    }
    for (std::thread &thread : clients)
        thread.join();

    for (std::size_t s = 0; s < std::size(seeds); ++s) {
        const std::string &first = artifacts[s * kClientsPerSpec];
        ASSERT_FALSE(first.empty());
        for (int c = 1; c < kClientsPerSpec; ++c)
            EXPECT_EQ(artifacts[s * kClientsPerSpec + c], first)
                << "spec " << s;
        // And the served bytes are the batch CLI's bytes.
        EXPECT_EQ(first, directArtifact(tinySpec(seeds[s])));
    }

    // Each distinct spec simulated exactly once: 3 specs x 3 runs.
    RawClient client(socket);
    JsonValue stats_request;
    stats_request.set("type", "stats");
    const JsonValue stats = client.call(stats_request);
    ASSERT_EQ(client.typeOf(stats), "stats");
    EXPECT_EQ(stats.find("runsExecuted")->asUint(),
              3u * std::size(seeds));
    EXPECT_EQ(stats.find("submissions")->asUint(),
              std::size(seeds) * kClientsPerSpec);
    // Every duplicate was answered without a fresh campaign.
    EXPECT_EQ(stats.find("coalesced")->asUint() +
                  stats.find("cacheHits")->asUint(),
              std::size(seeds) * (kClientsPerSpec - 1));
}

TEST_F(ServerTest, AbruptDisconnectCancelsAnAttachedCampaign)
{
    const std::string socket = startServer(/*quantum=*/1);
    // Big enough that it cannot finish while we are still watching.
    const fault::CampaignConfig spec = tinySpec(54, /*sites=*/120);

    RawClient victim(socket);
    ASSERT_TRUE(victim.connected());
    const JsonValue submitted = victim.call(submitRequest(spec, false));
    ASSERT_EQ(victim.typeOf(submitted), "submitted") << submitted.dump();
    const std::string id = submitted.find("id")->string();

    // Wait until at least one run is committed (checkpoint on disk),
    // then vanish without a goodbye.
    RawClient observer(socket);
    ASSERT_TRUE(observer.connected());
    for (;;) {
        const JsonValue status = observer.call(idRequest("status", id));
        ASSERT_EQ(observer.typeOf(status), "status");
        if (status.find("runsCompleted")->asUint() >= 1)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    victim.close();

    // The registry notices the disconnect and frees the scheduler
    // share; the campaign retires as cancelled with its checkpoint.
    EXPECT_EQ(awaitTerminal(observer, id), "cancelled");
    EXPECT_TRUE(fs::exists(server_->cache().checkpointPath(id)));
    const JsonValue refused = observer.call(idRequest("result", id));
    ASSERT_EQ(observer.typeOf(refused), "error");
    EXPECT_EQ(refused.find("code")->string(), kErrNotComplete);

    // A detached resubmission resumes the checkpoint and converges on
    // exactly the bytes a batch run would produce.
    const JsonValue again = observer.call(submitRequest(spec, true));
    ASSERT_EQ(observer.typeOf(again), "submitted") << again.dump();
    ASSERT_EQ(awaitTerminal(observer, id), "complete");
    const JsonValue result = observer.call(idRequest("result", id));
    ASSERT_EQ(observer.typeOf(result), "result") << result.dump();
    EXPECT_EQ(result.find("artifact")->string(), directArtifact(spec));
}

TEST_F(ServerTest, ExplicitCancelFreesTheSchedulerShare)
{
    const std::string socket = startServer(/*quantum=*/1);
    const fault::CampaignConfig big = tinySpec(55, /*sites=*/120);
    const fault::CampaignConfig small = tinySpec(56);

    RawClient client(socket);
    ASSERT_TRUE(client.connected());
    const JsonValue submitted = client.call(submitRequest(big, true));
    const std::string big_id = submitted.find("id")->string();

    const JsonValue cancelled =
        client.call(idRequest("cancel", big_id));
    ASSERT_EQ(client.typeOf(cancelled), "cancelled") << cancelled.dump();
    EXPECT_EQ(awaitTerminal(client, big_id), "cancelled");

    // The share is free: a small campaign completes promptly even
    // though the big one would still have ~100 quanta left.
    const JsonValue small_submitted =
        client.call(submitRequest(small, false));
    const std::string small_id =
        small_submitted.find("id")->string();
    EXPECT_EQ(awaitTerminal(client, small_id), "complete");

    // Cancelling a settled campaign is a typed error.
    const JsonValue again = client.call(idRequest("cancel", big_id));
    ASSERT_EQ(client.typeOf(again), "error");
    EXPECT_EQ(again.find("code")->string(), kErrNotActive);
}

TEST_F(ServerTest, HostileInputGetsTypedErrorsAndTheSessionSurvives)
{
    const std::string socket = startServer();
    RawClient client(socket);
    ASSERT_TRUE(client.connected());

    const std::pair<const char *, const char *> probes[] = {
        {"not json at all\n", kErrBadJson},
        {"[1,2,3]\n", kErrBadRequest},
        {"{\"type\":\"warp\"}\n", kErrUnknownType},
        {"{\"type\":\"status\"}\n", kErrBadRequest},
        {"{\"type\":\"submit\",\"config\":{}}\n", kErrBadSpec},
        {"{\"type\":\"status\",\"id\":\"nope\"}\n", kErrUnknownCampaign},
        {"{\"type\":\"watch\",\"id\":\"nope\"}\n", kErrUnknownCampaign},
        {"{\"type\":\"result\",\"id\":\"nope\"}\n", kErrUnknownCampaign},
    };
    for (const auto &[line, code] : probes) {
        ASSERT_TRUE(client.sendRaw(line));
        const JsonValue response = client.readResponse();
        ASSERT_EQ(client.typeOf(response), "error") << line;
        EXPECT_EQ(response.find("code")->string(), code) << line;
    }

    // Blank keep-alive lines are tolerated silently, and the session
    // is still fully functional after the barrage.
    ASSERT_TRUE(client.sendRaw("\n\n"));
    JsonValue ping;
    ping.set("type", "ping");
    EXPECT_EQ(client.typeOf(client.call(ping)), "pong");
}

TEST_F(ServerTest, OversizedRequestLineIsRejectedAndResyncs)
{
    const std::string socket = startServer(4, /*max_line=*/1024);
    RawClient client(socket);
    ASSERT_TRUE(client.connected());

    // 8 KiB of garbage on one line, fed in chunks. One typed error,
    // then the stream resyncs at the newline.
    const std::string big(8192, 'x');
    ASSERT_TRUE(client.sendRaw(big));
    ASSERT_TRUE(client.sendRaw(big + "\n"));
    const JsonValue error = client.readResponse();
    ASSERT_EQ(client.typeOf(error), "error") << error.dump();
    EXPECT_EQ(error.find("code")->string(), kErrOversized);

    JsonValue ping;
    ping.set("type", "ping");
    EXPECT_EQ(client.typeOf(client.call(ping)), "pong");
}

TEST_F(ServerTest, ShutdownRequestUnblocksWaitForShutdown)
{
    const std::string socket = startServer();
    RawClient client(socket);
    ASSERT_TRUE(client.connected());

    JsonValue shutdown;
    shutdown.set("type", "shutdown");
    EXPECT_EQ(client.typeOf(client.call(shutdown)), "bye");

    // The daemon's main thread would now fall out of this wait.
    server_->waitForShutdown();
    server_->stop();
    // Stop is idempotent and the socket file is gone.
    server_->stop();
    EXPECT_FALSE(fs::exists(socket));
}

TEST_F(ServerTest, StaleSocketFromCrashedPredecessorIsReclaimed)
{
    // A crashed daemon leaves its socket file behind (stop() never
    // ran). Manufacture that exact state: a bound-then-closed socket
    // nobody is listening on.
    const std::string path = (dir_ / "sock").string();
    {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        ASSERT_GE(fd, 0);
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
        ASSERT_EQ(::bind(fd,
                         reinterpret_cast<const sockaddr *>(&address),
                         sizeof(address)),
                  0);
        ::close(fd); // "kill -9": the file stays, the listener dies.
    }
    ASSERT_TRUE(fs::exists(path));

    // The successor probes, finds nobody answering, and reclaims.
    const std::string socket = startServer();
    EXPECT_EQ(socket, path);
    RawClient client(socket);
    ASSERT_TRUE(client.connected());
    JsonValue ping;
    ping.set("type", "ping");
    EXPECT_EQ(client.typeOf(client.call(ping)), "pong");
}

TEST_F(ServerTest, LiveDaemonSocketIsRefusedNotClobbered)
{
    const std::string socket = startServer();

    ServerConfig config;
    config.socketPath = socket;
    config.cacheDir = (dir_ / "cache2").string();
    config.registry.jobs = 1;
    CampaignServer second(config);
    std::string error;
    EXPECT_FALSE(second.start(&error));
    EXPECT_NE(error.find("another daemon"), std::string::npos)
        << error;

    // The incumbent is untouched by the failed takeover.
    RawClient client(socket);
    ASSERT_TRUE(client.connected());
    JsonValue ping;
    ping.set("type", "ping");
    EXPECT_EQ(client.typeOf(client.call(ping)), "pong");
}

TEST_F(ServerTest, NonSocketFileAtSocketPathIsRefused)
{
    const std::string path = (dir_ / "sock").string();
    {
        std::ofstream file(path);
        file << "precious user data";
    }
    ServerConfig config;
    config.socketPath = path;
    config.cacheDir = (dir_ / "cache").string();
    CampaignServer server(config);
    std::string error;
    EXPECT_FALSE(server.start(&error));
    EXPECT_NE(error.find("not a socket"), std::string::npos) << error;
    // The file was not deleted.
    ASSERT_TRUE(fs::exists(path));
}

TEST_F(ServerTest, StatsReportDurabilityCounters)
{
    const std::string socket = startServer();
    RawClient client(socket);
    ASSERT_TRUE(client.connected());

    const fault::CampaignConfig spec = tinySpec(57);
    const JsonValue submitted = client.call(submitRequest(spec, true));
    ASSERT_EQ(client.typeOf(submitted), "submitted");
    const std::string id = submitted.find("id")->string();
    ASSERT_EQ(awaitTerminal(client, id), "complete");

    JsonValue request;
    request.set("type", "stats");
    const JsonValue stats = client.call(request);
    ASSERT_EQ(client.typeOf(stats), "stats") << stats.dump();
    for (const char *key :
         {"cacheEntries", "cacheBytes", "cacheEvictions",
          "cacheQuarantined", "journalAppends", "recoveredRequeued",
          "recoveredCompleted", "recoveredHealed"}) {
        ASSERT_NE(stats.find(key), nullptr) << key;
    }
    EXPECT_GE(stats.find("cacheEntries")->asUint(), 1u);
    EXPECT_GE(stats.find("cacheBytes")->asUint(), 1u);
    // submit + start + complete at minimum hit the journal.
    EXPECT_GE(stats.find("journalAppends")->asUint(), 3u);
    EXPECT_EQ(stats.find("recoveredRequeued")->asUint(), 0u);
}

} // namespace
} // namespace nocalert::serve
