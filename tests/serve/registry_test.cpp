/**
 * CampaignRegistry battery: caching, coalescing, fairness,
 * cancellation/resume, disconnect interest tracking, run-time failure
 * containment and telemetry — all driven through stepOnce() with the
 * scheduler thread disabled, so every interleaving is deterministic.
 *
 * The load-bearing assertions mirror the acceptance criteria:
 *  - a served artifact is byte-identical to a direct batch run of the
 *    same spec;
 *  - a repeated submission is answered from the cache without
 *    simulating anything (RegistryStats::runsExecuted is unchanged);
 *  - a cancelled campaign leaves a resumable checkpoint and a
 *    re-submission converges on the same bytes.
 */

#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "fault/serialize.hpp"

namespace nocalert::serve {
namespace {

namespace fs = std::filesystem;

/** A campaign small enough for many full runs per test. */
fault::CampaignConfig
tinySpec(std::uint64_t traffic_seed)
{
    fault::CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = traffic_seed;
    config.warmup = 80;
    config.observeWindow = 400;
    config.drainLimit = 2000;
    config.maxSites = 3;
    config.runForever = false;
    return config;
}

/** A spec that passes submit validation but fatals at run time: the
 *  golden run cannot possibly drain a saturated mesh in one cycle. */
fault::CampaignConfig
undrainableSpec()
{
    fault::CampaignConfig config = tinySpec(5);
    config.workload.synthetic.injectionRate = 0.9;
    config.observeWindow = 200;
    config.drainLimit = 1;
    return config;
}

/** What the batch path would produce for @p spec, byte for byte. */
std::string
directArtifact(const fault::CampaignConfig &spec)
{
    fault::FaultCampaign campaign(spec);
    const fault::CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    return fault::writeCampaignJson(result);
}

class RegistryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_registry_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /** Manual-stepping registry (no scheduler thread). */
    RegistryConfig manual(unsigned quantum) const
    {
        RegistryConfig config;
        config.jobs = 1;
        config.quantum = quantum;
        config.checkpointEvery = 1;
        config.startScheduler = false;
        return config;
    }

    void drain(CampaignRegistry &registry)
    {
        while (registry.stepOnce()) {
        }
    }

    fs::path dir_;
};

TEST_F(RegistryTest, ServedArtifactIsByteIdenticalToBatchRun)
{
    const fault::CampaignConfig spec = tinySpec(21);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 1);
    ASSERT_EQ(submitted.errorCode, nullptr) << submitted.error;
    EXPECT_EQ(submitted.state, CampaignState::Queued);
    EXPECT_FALSE(submitted.cached);

    // Not complete until the quanta have run.
    EXPECT_EQ(registry.result(submitted.id).errorCode, kErrNotComplete);

    drain(registry);

    const auto status = registry.status(submitted.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Complete);
    EXPECT_EQ(status->runsCompleted, status->runsPlanned);

    const ResultOutcome result = registry.result(submitted.id);
    ASSERT_TRUE(result.artifact.has_value());
    EXPECT_EQ(*result.artifact, directArtifact(spec));

    // The artifact landed and its checkpoint was retired.
    EXPECT_TRUE(fs::exists(cache.artifactPath(submitted.id)));
    EXPECT_FALSE(fs::exists(cache.checkpointPath(submitted.id)));
}

TEST_F(RegistryTest, RepeatSubmissionIsACacheHitWithoutSimulation)
{
    const fault::CampaignConfig spec = tinySpec(22);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(2), cache);

    const SubmitOutcome first = registry.submit(spec, false, 1);
    ASSERT_EQ(first.errorCode, nullptr);
    drain(registry);
    const std::uint64_t executed = registry.stats().runsExecuted;
    EXPECT_GT(executed, 0u);

    const SubmitOutcome second = registry.submit(spec, false, 2);
    EXPECT_EQ(second.id, first.id);
    EXPECT_EQ(second.state, CampaignState::Complete);
    EXPECT_TRUE(second.cached);
    drain(registry); // Must be a no-op.

    // The acceptance check: nothing was simulated for the repeat.
    const RegistryStats stats = registry.stats();
    EXPECT_EQ(stats.runsExecuted, executed);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.submissions, 2u);

    const ResultOutcome a = registry.result(first.id);
    const ResultOutcome b = registry.result(second.id);
    ASSERT_TRUE(a.artifact.has_value());
    ASSERT_TRUE(b.artifact.has_value());
    EXPECT_EQ(*a.artifact, *b.artifact);
}

TEST_F(RegistryTest, ColdStartServesFromADiskArtifactOfAPastLife)
{
    const fault::CampaignConfig spec = tinySpec(23);
    ResultCache cache(dir_.string());
    std::string id;
    {
        CampaignRegistry registry(manual(4), cache);
        id = registry.submit(spec, false, 1).id;
        drain(registry);
    }

    // A fresh registry over the same store: the artifact answers the
    // submission with zero simulation.
    CampaignRegistry reborn(manual(4), cache);
    const SubmitOutcome outcome = reborn.submit(spec, false, 1);
    EXPECT_EQ(outcome.id, id);
    EXPECT_EQ(outcome.state, CampaignState::Complete);
    EXPECT_TRUE(outcome.cached);
    EXPECT_EQ(reborn.stats().runsExecuted, 0u);
    EXPECT_EQ(reborn.stats().cacheHits, 1u);
    ASSERT_TRUE(reborn.result(id).artifact.has_value());
}

TEST_F(RegistryTest, InFlightDuplicatesCoalesceOntoOneEntry)
{
    const fault::CampaignConfig spec = tinySpec(24);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome first = registry.submit(spec, false, 1);
    ASSERT_TRUE(registry.stepOnce()); // Now mid-flight.

    const SubmitOutcome second = registry.submit(spec, false, 2);
    EXPECT_EQ(second.id, first.id);
    EXPECT_TRUE(second.coalesced);
    EXPECT_FALSE(second.cached);

    drain(registry);
    const RegistryStats stats = registry.stats();
    EXPECT_EQ(stats.coalesced, 1u);
    EXPECT_EQ(stats.cacheHits, 0u);
    // One campaign's worth of runs, not two.
    const auto status = registry.status(first.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(stats.runsExecuted, status->runsPlanned);
    EXPECT_EQ(registry.list().size(), 1u);
}

TEST_F(RegistryTest, ConcurrentCampaignsInterleaveRoundRobin)
{
    const fault::CampaignConfig spec_a = tinySpec(25);
    const fault::CampaignConfig spec_b = tinySpec(26);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome a = registry.submit(spec_a, false, 1);
    const SubmitOutcome b = registry.submit(spec_b, false, 1);
    ASSERT_NE(a.id, b.id);

    // Record the per-quantum event stream of both campaigns.
    std::vector<std::string> order;
    ASSERT_TRUE(registry.watch(a.id, 1, [&order](const JsonValue &e) {
        order.push_back(e.find("id")->string());
        return true;
    }));
    ASSERT_TRUE(registry.watch(b.id, 1, [&order](const JsonValue &e) {
        order.push_back(e.find("id")->string());
        return true;
    }));

    drain(registry);

    // quantum=1 and 3 runs each: every event alternates a,b,a,b,...
    ASSERT_EQ(order.size(), 6u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i % 2 == 0 ? a.id : b.id) << "event " << i;

    // Neither campaign starved: both completed, bytes both correct.
    EXPECT_EQ(*registry.result(a.id).artifact, directArtifact(spec_a));
    EXPECT_EQ(*registry.result(b.id).artifact, directArtifact(spec_b));
}

TEST_F(RegistryTest, CancelLeavesAResumableCheckpointAndConverges)
{
    const fault::CampaignConfig spec = tinySpec(27);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 1);
    ASSERT_TRUE(registry.stepOnce()); // One run committed.

    EXPECT_EQ(registry.cancel(submitted.id), nullptr);
    drain(registry); // The job observes the token on its next turn.

    const auto status = registry.status(submitted.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Cancelled);
    EXPECT_EQ(registry.stats().campaignsCancelled, 1u);
    // The contract: a valid checkpoint is on disk, no artifact yet.
    EXPECT_TRUE(fs::exists(cache.checkpointPath(submitted.id)));
    EXPECT_FALSE(fs::exists(cache.artifactPath(submitted.id)));
    EXPECT_EQ(registry.result(submitted.id).errorCode, kErrNotComplete);
    // Cancelling a settled campaign is a typed error.
    EXPECT_EQ(registry.cancel(submitted.id), kErrNotActive);

    const std::uint64_t executed_before = registry.stats().runsExecuted;

    // Resubmission resumes from the checkpoint...
    const SubmitOutcome again = registry.submit(spec, false, 1);
    EXPECT_EQ(again.id, submitted.id);
    EXPECT_EQ(again.state, CampaignState::Queued);
    drain(registry);

    // ...and converges on exactly the batch-run bytes, having executed
    // only the remaining runs (nothing was thrown away or redone).
    const ResultOutcome result = registry.result(submitted.id);
    ASSERT_TRUE(result.artifact.has_value());
    EXPECT_EQ(*result.artifact, directArtifact(spec));
    const auto final_status = registry.status(submitted.id);
    ASSERT_TRUE(final_status.has_value());
    EXPECT_EQ(registry.stats().runsExecuted,
              final_status->runsPlanned);
    EXPECT_GT(registry.stats().runsExecuted, executed_before);
}

TEST_F(RegistryTest, LastInterestedDisconnectAutoCancels)
{
    const fault::CampaignConfig spec = tinySpec(28);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 7);
    ASSERT_TRUE(registry.stepOnce());

    registry.disconnect(7); // Abrupt: the one interested peer is gone.
    drain(registry);

    const auto status = registry.status(submitted.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Cancelled);
    EXPECT_TRUE(fs::exists(cache.checkpointPath(submitted.id)));
}

TEST_F(RegistryTest, SecondInterestedClientKeepsTheCampaignAlive)
{
    const fault::CampaignConfig spec = tinySpec(29);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 7);
    registry.submit(spec, false, 8); // Coalesced second interest.

    registry.disconnect(7);
    drain(registry);

    const auto status = registry.status(submitted.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Complete) << "client 8 "
        "still cared; the disconnect of 7 must not cancel";
}

TEST_F(RegistryTest, DetachedCampaignsSurviveDisconnect)
{
    const fault::CampaignConfig spec = tinySpec(30);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, true, 7);
    registry.disconnect(7);
    drain(registry);

    const auto status = registry.status(submitted.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Complete);
}

TEST_F(RegistryTest, ConstructorRejectionIsATypedBadSpec)
{
    fault::CampaignConfig bad = tinySpec(31);
    bad.network.width = 1; // Below the 2x2 minimum.
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome outcome = registry.submit(bad, false, 1);
    EXPECT_EQ(outcome.errorCode, kErrBadSpec);
    EXPECT_FALSE(outcome.error.empty());
    // Nothing was scheduled and the registry is still serviceable.
    EXPECT_FALSE(registry.stepOnce());
    const SubmitOutcome good = registry.submit(tinySpec(31), false, 1);
    EXPECT_EQ(good.errorCode, nullptr);
}

TEST_F(RegistryTest, RunTimeFatalRetiresTheCampaignAsFailed)
{
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(4), cache);

    // Passes validation; the golden run cannot drain at run time.
    const SubmitOutcome submitted =
        registry.submit(undrainableSpec(), false, 1);
    ASSERT_EQ(submitted.errorCode, nullptr) << submitted.error;

    drain(registry);

    const auto status = registry.status(submitted.id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Failed);
    EXPECT_NE(status->failure.find("drain"), std::string::npos)
        << status->failure;
    EXPECT_EQ(registry.stats().campaignsFailed, 1u);

    const ResultOutcome result = registry.result(submitted.id);
    EXPECT_EQ(result.errorCode, kErrCampaignFailed);
    EXPECT_FALSE(result.failure.empty());

    // One tenant's bad spec never takes the service down: a healthy
    // campaign still completes afterwards.
    const fault::CampaignConfig good = tinySpec(32);
    const SubmitOutcome healthy = registry.submit(good, false, 1);
    ASSERT_EQ(healthy.errorCode, nullptr);
    drain(registry);
    EXPECT_EQ(*registry.result(healthy.id).artifact,
              directArtifact(good));
}

TEST_F(RegistryTest, WatchStreamsFiniteDeltasAndOneDoneEvent)
{
    const fault::CampaignConfig spec = tinySpec(33);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 1);
    std::vector<JsonValue> events;
    ASSERT_TRUE(
        registry.watch(submitted.id, 1, [&events](const JsonValue &e) {
            events.push_back(e);
            return true;
        }));

    drain(registry);

    // 3 runs at quantum=1: two telemetry deltas, then the terminal.
    ASSERT_EQ(events.size(), 3u);
    for (std::size_t i = 0; i + 1 < events.size(); ++i) {
        const JsonValue &event = events[i];
        ASSERT_EQ(event.find("type")->string(), "telemetry");
        EXPECT_EQ(event.find("id")->string(), submitted.id);
        EXPECT_EQ(event.find("deltaRuns")->asUint(), 1u);
        // The wire contract: every double is finite.
        for (const char *key :
             {"windowSeconds", "runsPerSecond", "etaSeconds"}) {
            const JsonValue *value = event.find(key);
            ASSERT_NE(value, nullptr) << key;
            EXPECT_TRUE(std::isfinite(value->asDouble())) << key;
        }
    }
    const JsonValue &done = events.back();
    EXPECT_EQ(done.find("type")->string(), "done");
    EXPECT_EQ(done.find("state")->string(), "complete");
}

TEST_F(RegistryTest, WatchOnATerminalCampaignAnswersImmediately)
{
    const fault::CampaignConfig spec = tinySpec(34);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(4), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 1);
    drain(registry);

    std::vector<JsonValue> events;
    EXPECT_TRUE(
        registry.watch(submitted.id, 2, [&events](const JsonValue &e) {
            events.push_back(e);
            return true;
        }));
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].find("type")->string(), "done");
    EXPECT_EQ(events[0].find("state")->string(), "complete");

    EXPECT_FALSE(registry.watch("no-such-id", 2,
                                [](const JsonValue &) { return true; }));
}

TEST_F(RegistryTest, DeadSinksAreDroppedNotFatal)
{
    const fault::CampaignConfig spec = tinySpec(35);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 1);
    int delivered = 0;
    ASSERT_TRUE(registry.watch(submitted.id, 1,
                               [&delivered](const JsonValue &) {
                                   ++delivered;
                                   return false; // Dead peer.
                               }));
    drain(registry);
    // The sink was dropped after its first refusal; the campaign
    // still ran to completion.
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(registry.status(submitted.id)->state,
              CampaignState::Complete);
}

TEST_F(RegistryTest, ShutdownCancelsActiveWorkButKeepsCheckpoints)
{
    const fault::CampaignConfig spec = tinySpec(36);
    ResultCache cache(dir_.string());
    CampaignRegistry registry(manual(1), cache);

    const SubmitOutcome submitted = registry.submit(spec, false, 1);
    ASSERT_TRUE(registry.stepOnce());

    registry.shutdown();

    EXPECT_EQ(registry.status(submitted.id)->state,
              CampaignState::Cancelled);
    EXPECT_TRUE(fs::exists(cache.checkpointPath(submitted.id)));
    // Submissions after shutdown are refused, not crashed.
    const SubmitOutcome refused = registry.submit(spec, false, 2);
    EXPECT_EQ(refused.errorCode, kErrNotActive);
}

} // namespace
} // namespace nocalert::serve
