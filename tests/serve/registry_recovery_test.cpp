/**
 * Journal-backed registry recovery battery: a registry torn down with
 * work in flight (the in-process stand-in for kill -9 — the journal
 * never sees a terminal record) rebuilds from the write-ahead log on
 * construction, requeues unfinished submissions, re-verifies completed
 * ones against the cache, self-heals artifacts that went missing or
 * corrupt, and converges on artifacts byte-identical to an
 * uninterrupted batch run.
 */

#include "serve/registry.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "fault/serialize.hpp"
#include "serve/journal.hpp"
#include "util/fsio.hpp"

namespace nocalert::serve {
namespace {

namespace fs = std::filesystem;

fault::CampaignConfig
tinySpec(std::uint64_t traffic_seed)
{
    fault::CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = traffic_seed;
    config.warmup = 80;
    config.observeWindow = 400;
    config.drainLimit = 2000;
    config.maxSites = 3;
    config.runForever = false;
    return config;
}

/** What the batch path would produce for @p spec, byte for byte. */
std::string
directArtifact(const fault::CampaignConfig &spec)
{
    fault::FaultCampaign campaign(spec);
    const fault::CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    return fault::writeCampaignJson(result);
}

class RegistryRecoveryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_recovery_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
        journalPath_ = (dir_ / "journal.wal").string();
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    RegistryConfig manual(unsigned quantum) const
    {
        RegistryConfig config;
        config.jobs = 1;
        config.quantum = quantum;
        config.checkpointEvery = 1;
        config.startScheduler = false;
        return config;
    }

    void drain(CampaignRegistry &registry)
    {
        while (registry.stepOnce()) {
        }
    }

    /** Flip one artifact byte on disk (post-crash corruption). */
    static void corruptFile(const std::string &path)
    {
        const auto bytes = readFileBytes(path);
        ASSERT_TRUE(bytes.has_value()) << path;
        std::string damaged = *bytes;
        damaged[damaged.size() / 2] ^=
            static_cast<char>(0x01);
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file.write(damaged.data(),
                   static_cast<std::streamsize>(damaged.size()));
    }

    fs::path dir_;
    std::string journalPath_;
};

TEST_F(RegistryRecoveryTest, UnfinishedSubmissionIsRequeuedAndFinishes)
{
    const fault::CampaignConfig spec = tinySpec(31);
    const std::string id = fault::campaignArtifactHash(spec);
    ResultCache cache(dir_.string());

    {
        SubmissionJournal journal(journalPath_);
        CampaignRegistry registry(manual(1), cache, &journal);
        const SubmitOutcome out = registry.submit(spec, true, 1);
        ASSERT_EQ(out.errorCode, nullptr) << out.error;
        ASSERT_TRUE(registry.stepOnce()); // One quantum, then "crash".
    } // Teardown cancels in memory but journals no terminal record.

    SubmissionJournal journal(journalPath_);
    CampaignRegistry revived(manual(1), cache, &journal);
    const RecoveryInfo recovery = revived.recovery();
    EXPECT_EQ(recovery.requeued, 1u);
    EXPECT_EQ(recovery.completedVerified, 0u);
    EXPECT_EQ(recovery.completedRequeued, 0u);
    const auto status = revived.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_NE(status->state, CampaignState::Complete);

    drain(revived);
    const ResultOutcome result = revived.result(id);
    ASSERT_TRUE(result.artifact.has_value()) << result.failure;
    EXPECT_EQ(*result.artifact, directArtifact(spec));
}

TEST_F(RegistryRecoveryTest, MultipleCrashedSubmissionsAllRecover)
{
    const fault::CampaignConfig specA = tinySpec(33);
    const fault::CampaignConfig specB = tinySpec(34);
    ResultCache cache(dir_.string());

    {
        SubmissionJournal journal(journalPath_);
        CampaignRegistry registry(manual(1), cache, &journal);
        ASSERT_EQ(registry.submit(specA, true, 1).errorCode, nullptr);
        ASSERT_EQ(registry.submit(specB, true, 1).errorCode, nullptr);
    } // Neither ever ran: no start records, no checkpoints.

    SubmissionJournal journal(journalPath_);
    CampaignRegistry revived(manual(1), cache, &journal);
    EXPECT_EQ(revived.recovery().requeued, 2u);
    drain(revived);
    for (const fault::CampaignConfig &spec : {specA, specB}) {
        const ResultOutcome result =
            revived.result(fault::campaignArtifactHash(spec));
        ASSERT_TRUE(result.artifact.has_value()) << result.failure;
        EXPECT_EQ(*result.artifact, directArtifact(spec));
    }
}

TEST_F(RegistryRecoveryTest, CompletedSubmissionVerifiesWithoutRerun)
{
    const fault::CampaignConfig spec = tinySpec(35);
    const std::string id = fault::campaignArtifactHash(spec);
    ResultCache cache(dir_.string());
    std::string artifact;

    {
        SubmissionJournal journal(journalPath_);
        CampaignRegistry registry(manual(4), cache, &journal);
        ASSERT_EQ(registry.submit(spec, true, 1).errorCode, nullptr);
        drain(registry);
        const ResultOutcome result = registry.result(id);
        ASSERT_TRUE(result.artifact.has_value());
        artifact = *result.artifact;
    }

    SubmissionJournal journal(journalPath_);
    CampaignRegistry revived(manual(4), cache, &journal);
    EXPECT_EQ(revived.recovery().completedVerified, 1u);
    EXPECT_EQ(revived.recovery().requeued, 0u);
    const auto status = revived.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, CampaignState::Complete);

    const ResultOutcome result = revived.result(id);
    ASSERT_TRUE(result.artifact.has_value());
    EXPECT_EQ(*result.artifact, artifact);
    EXPECT_EQ(revived.stats().runsExecuted, 0u); // Nothing re-ran.
}

TEST_F(RegistryRecoveryTest, CorruptCompletedArtifactIsRecomputed)
{
    const fault::CampaignConfig spec = tinySpec(36);
    const std::string id = fault::campaignArtifactHash(spec);
    std::string artifact;

    {
        ResultCache cache(dir_.string());
        SubmissionJournal journal(journalPath_);
        CampaignRegistry registry(manual(4), cache, &journal);
        ASSERT_EQ(registry.submit(spec, true, 1).errorCode, nullptr);
        drain(registry);
        const ResultOutcome result = registry.result(id);
        ASSERT_TRUE(result.artifact.has_value());
        artifact = *result.artifact;
    }

    // Bit-rot strikes between the crash and the restart. A fresh
    // cache (cold memory) must detect it and the registry must
    // requeue from the journalled spec.
    ResultCache cache(dir_.string());
    corruptFile(cache.artifactPath(id));
    SubmissionJournal journal(journalPath_);
    CampaignRegistry revived(manual(4), cache, &journal);
    EXPECT_EQ(revived.recovery().completedRequeued, 1u);
    EXPECT_EQ(revived.recovery().completedVerified, 0u);
    EXPECT_GE(cache.stats().quarantined, 1u);

    drain(revived);
    const ResultOutcome result = revived.result(id);
    ASSERT_TRUE(result.artifact.has_value()) << result.failure;
    EXPECT_EQ(*result.artifact, artifact); // Byte-identical self-heal.
}

TEST_F(RegistryRecoveryTest, EvictedArtifactIsRecomputedOnResult)
{
    const fault::CampaignConfig specA = tinySpec(37);
    const fault::CampaignConfig specB = tinySpec(40);
    const std::string idA = fault::campaignArtifactHash(specA);
    // A 1-byte budget: every store evicts all unpinned entries, so
    // finishing B throws A's artifact away (A is no longer pinned).
    ResultCache cache(CacheConfig{dir_.string(), 1});
    SubmissionJournal journal(journalPath_);
    CampaignRegistry registry(manual(4), cache, &journal);
    ASSERT_EQ(registry.submit(specA, true, 1).errorCode, nullptr);
    drain(registry);
    ASSERT_EQ(registry.submit(specB, true, 1).errorCode, nullptr);
    drain(registry);
    EXPECT_GE(cache.stats().evictions, 1u);

    // result(A) must notice the loss and transparently requeue the
    // recomputation from the retained spec instead of erroring
    // forever.
    const ResultOutcome lost = registry.result(idA);
    EXPECT_FALSE(lost.artifact.has_value());
    drain(registry);
    const ResultOutcome result = registry.result(idA);
    ASSERT_TRUE(result.artifact.has_value()) << result.failure;
    EXPECT_EQ(*result.artifact, directArtifact(specA));
}

TEST_F(RegistryRecoveryTest, ExplicitCancelIsDurableAcrossRestart)
{
    const fault::CampaignConfig spec = tinySpec(38);
    const std::string id = fault::campaignArtifactHash(spec);
    ResultCache cache(dir_.string());

    {
        SubmissionJournal journal(journalPath_);
        CampaignRegistry registry(manual(1), cache, &journal);
        ASSERT_EQ(registry.submit(spec, true, 1).errorCode, nullptr);
        EXPECT_EQ(registry.cancel(id), nullptr);
        drain(registry);
    }

    // The cancel was journalled: a restart must NOT revive the
    // campaign behind the client's back.
    SubmissionJournal journal(journalPath_);
    CampaignRegistry revived(manual(1), cache, &journal);
    EXPECT_EQ(revived.recovery().requeued, 0u);
    EXPECT_FALSE(revived.status(id).has_value());
}

TEST_F(RegistryRecoveryTest, ReplayCompactsTheJournal)
{
    const fault::CampaignConfig spec = tinySpec(39);
    ResultCache cache(dir_.string());
    {
        SubmissionJournal journal(journalPath_);
        CampaignRegistry registry(manual(4), cache, &journal);
        ASSERT_EQ(registry.submit(spec, true, 1).errorCode, nullptr);
        drain(registry);
    }
    {
        SubmissionJournal journal(journalPath_);
        CampaignRegistry revived(manual(4), cache, &journal);
        EXPECT_EQ(revived.recovery().completedVerified, 1u);
    }
    // The completed lifecycle was folded away at replay: the file now
    // holds only live submissions — none.
    SubmissionJournal journal(journalPath_);
    const JournalReplay replay = journal.replay();
    EXPECT_TRUE(replay.pending.empty());
    EXPECT_TRUE(replay.completed.empty());
}

} // namespace
} // namespace nocalert::serve
