/**
 * End-to-end tests of the nocalert_serve daemon and nocalert_client
 * CLI as real processes over a real socket — the same drive CI's
 * serve-smoke job performs:
 *
 *  - a served artifact is byte-identical to a campaign_shard batch
 *    run of the same flags;
 *  - a repeated submission is a cache hit (stats prove no re-run);
 *  - the documented exit-code contract (0 ok / 1 server error /
 *    2 usage / 3 cannot connect);
 *  - a shutdown request stops the daemon and removes the socket.
 *
 * Binary paths arrive via compile definitions:
 * NOCALERT_SERVE_BIN, NOCALERT_CLIENT_BIN, NOCALERT_SHARD_BIN.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#ifndef NOCALERT_SERVE_BIN
#error "NOCALERT_SERVE_BIN must point at the nocalert_serve binary"
#endif
#ifndef NOCALERT_CLIENT_BIN
#error "NOCALERT_CLIENT_BIN must point at the nocalert_client binary"
#endif
#ifndef NOCALERT_SHARD_BIN
#error "NOCALERT_SHARD_BIN must point at the campaign_shard binary"
#endif

namespace {

namespace fs = std::filesystem;

/** Campaign flags shared by the served and the batch invocation. */
const char *kCampaignFlags = "--mesh 4 --sites 4 --rate 0.05 --seed 11"
                             " --warmup 80";

int
exitStatus(const std::string &command)
{
    const int raw = std::system(command.c_str());
    EXPECT_NE(raw, -1) << command;
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream file(path, std::ios::binary);
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
}

class ServeCli : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_serve_cli_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
        socket_ = (dir_ / "sock").string();

        // The daemon as a real background process, like CI runs it.
        const std::string launch =
            std::string(NOCALERT_SERVE_BIN) + " --socket " + socket_ +
            " --cache " + (dir_ / "cache").string() +
            " --jobs 1 --quantum 4 --checkpoint-every 1 > " +
            (dir_ / "serve.log").string() + " 2>&1 &";
        ASSERT_EQ(exitStatus(launch), 0);
        ASSERT_TRUE(awaitSocket()) << readFile(dir_ / "serve.log");
    }

    void TearDown() override
    {
        // Best effort: ask the daemon to exit and wait for the socket
        // to disappear so the temp dir can be removed cleanly.
        if (fs::exists(socket_)) {
            exitStatus(client("shutdown") + " >/dev/null 2>&1");
            awaitSocketGone();
        }
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    bool awaitSocket() const
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (!fs::exists(socket_)) {
            if (std::chrono::steady_clock::now() > deadline)
                return false;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return true;
    }

    bool awaitSocketGone() const
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(10);
        while (fs::exists(socket_)) {
            if (std::chrono::steady_clock::now() > deadline)
                return false;
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        return true;
    }

    /** `nocalert_client <command> --socket <sock>`. */
    std::string client(const std::string &command) const
    {
        return std::string(NOCALERT_CLIENT_BIN) + " " + command +
               " --socket " + socket_;
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
    std::string socket_;
};

TEST_F(ServeCli, ServedArtifactIsByteIdenticalToTheBatchCli)
{
    // The served path: submit, wait, fetch.
    const std::string submit =
        client("submit") + " " + kCampaignFlags + " --wait --out " +
        path("served.json") + " 2> " + path("client.log");
    ASSERT_EQ(exitStatus(submit), 0) << readFile(dir_ / "client.log");

    // The batch path: same flags through campaign_shard run.
    const std::string batch =
        std::string(NOCALERT_SHARD_BIN) + " run " + kCampaignFlags +
        " --jobs 1 --out " + path("ref.json") + " >/dev/null 2>&1";
    ASSERT_EQ(exitStatus(batch), 0);

    const std::string served = readFile(dir_ / "served.json");
    const std::string reference = readFile(dir_ / "ref.json");
    ASSERT_FALSE(served.empty());
    EXPECT_EQ(served, reference)
        << "the service must reproduce the batch CLI byte for byte";
}

TEST_F(ServeCli, RepeatedSubmissionIsACacheHit)
{
    const std::string submit = client("submit") + " " + kCampaignFlags +
                               " --wait --out " + path("first.json") +
                               " 2>/dev/null";
    ASSERT_EQ(exitStatus(submit), 0);

    // Again; answered from the artifact store, byte-identically.
    const std::string again = client("submit") + " " + kCampaignFlags +
                              " --wait --out " + path("second.json") +
                              " 2>/dev/null";
    ASSERT_EQ(exitStatus(again), 0);
    EXPECT_EQ(readFile(dir_ / "first.json"),
              readFile(dir_ / "second.json"));

    // And the daemon's own counters prove nothing was re-simulated:
    // 4 planned runs executed once, one cache hit.
    ASSERT_EQ(exitStatus(client("stats") + " > " + path("stats.txt")),
              0);
    const std::string stats = readFile(dir_ / "stats.txt");
    EXPECT_NE(stats.find("cacheHits"), std::string::npos) << stats;
    EXPECT_NE(stats.find("runsExecuted         4"), std::string::npos)
        << stats;
    EXPECT_NE(stats.find("cacheHits            1"), std::string::npos)
        << stats;
}

TEST_F(ServeCli, ExitCodeContract)
{
    // 0: liveness.
    EXPECT_EQ(exitStatus(client("ping") + " >/dev/null 2>&1"), 0);
    // 1: the server answers with a typed error.
    EXPECT_EQ(exitStatus(client("status") + " no-such-campaign"
                                            " >/dev/null 2>&1"),
              1);
    // 2: usage (no socket).
    EXPECT_EQ(exitStatus(std::string(NOCALERT_CLIENT_BIN) +
                         " ping >/dev/null 2>&1"),
              2);
    // 3: nobody listening there.
    EXPECT_EQ(exitStatus(std::string(NOCALERT_CLIENT_BIN) +
                         " ping --socket " + path("nowhere.sock") +
                         " >/dev/null 2>&1"),
              3);
}

TEST_F(ServeCli, ListAndStatusSeeASubmittedCampaign)
{
    // Fire-and-forget submit prints the campaign id on stdout.
    const std::string submit = client("submit") + " " + kCampaignFlags +
                               " > " + path("id.txt") + " 2>/dev/null";
    ASSERT_EQ(exitStatus(submit), 0);
    std::string id = readFile(dir_ / "id.txt");
    while (!id.empty() && (id.back() == '\n' || id.back() == '\r'))
        id.pop_back();
    ASSERT_FALSE(id.empty());

    EXPECT_EQ(exitStatus(client("status") + " " + id +
                         " >/dev/null 2>&1"),
              0);
    ASSERT_EQ(exitStatus(client("list") + " > " + path("list.txt")), 0);
    EXPECT_NE(readFile(dir_ / "list.txt").find(id), std::string::npos);
    // Detached campaigns run to completion without a client attached.
    EXPECT_EQ(exitStatus(client("watch") + " " + id +
                         " >/dev/null 2>&1"),
              0);
    EXPECT_EQ(exitStatus(client("result") + " " + id + " --out " +
                         path("artifact.json") + " 2>/dev/null"),
              0);
    EXPECT_FALSE(readFile(dir_ / "artifact.json").empty());
}

TEST_F(ServeCli, ShutdownStopsTheDaemonAndRemovesTheSocket)
{
    ASSERT_EQ(exitStatus(client("shutdown") + " >/dev/null 2>&1"), 0);
    EXPECT_TRUE(awaitSocketGone());
    // Nothing is listening any more.
    EXPECT_EQ(exitStatus(client("ping") + " >/dev/null 2>&1"), 3);
}

} // namespace
