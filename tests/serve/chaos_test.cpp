/**
 * Chaos fault-injection harness: the real nocalert_serve daemon is
 * SIGKILLed at randomized points mid-campaign, its journal and cache
 * are actively damaged (torn tails, flipped bits), and after every
 * restart the served artifact must still come out byte-identical to
 * an uninterrupted in-process run of the same spec.
 *
 * Each kill/restart cycle also exercises the stale-socket reclaim
 * (kill -9 always leaves the socket file behind) and the client's
 * retry/backoff path (the post-restart submission races the daemon's
 * bind).
 *
 * Cycle count and RNG seed come from NOCALERT_CHAOS_CYCLES and
 * NOCALERT_CHAOS_SEED (scripts/chaos_smoke.sh runs the long battery);
 * the seed is always logged so any failure replays exactly.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"

#ifndef NOCALERT_SERVE_BIN
#error "NOCALERT_SERVE_BIN must point at the nocalert_serve binary"
#endif
#ifndef NOCALERT_CLIENT_BIN
#error "NOCALERT_CLIENT_BIN must point at the nocalert_client binary"
#endif

namespace nocalert::serve {
namespace {

namespace fs = std::filesystem;

fault::CampaignConfig
tinySpec(std::uint64_t traffic_seed)
{
    fault::CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = traffic_seed;
    config.warmup = 80;
    config.observeWindow = 400;
    config.drainLimit = 2000;
    config.maxSites = 3;
    config.runForever = false;
    return config;
}

/** The uninterrupted ground truth for @p spec, byte for byte. */
std::string
directArtifact(const fault::CampaignConfig &spec)
{
    fault::FaultCampaign campaign(spec);
    const fault::CampaignResult result = campaign.run();
    EXPECT_TRUE(result.complete());
    return fault::writeCampaignJson(result);
}

int
exitStatus(const std::string &command)
{
    const int raw = std::system(command.c_str());
    EXPECT_NE(raw, -1) << command;
    return WIFEXITED(raw) ? WEXITSTATUS(raw) : -1;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream file(path, std::ios::binary);
    std::ostringstream text;
    text << file.rdbuf();
    return text.str();
}

unsigned
envUnsigned(const char *name, unsigned fallback)
{
    const char *value = std::getenv(name);
    if (!value || !*value)
        return fallback;
    return static_cast<unsigned>(std::strtoul(value, nullptr, 10));
}

/** The daemon as a child process we can kill -9 at will. */
class Daemon
{
  public:
    ~Daemon() { kill9(); }

    bool start(const std::string &socket, const std::string &cache,
               const std::string &log)
    {
        pid_ = ::fork();
        if (pid_ == 0) {
            const int fd = ::open(log.c_str(),
                                  O_WRONLY | O_CREAT | O_APPEND, 0644);
            if (fd >= 0) {
                ::dup2(fd, STDOUT_FILENO);
                ::dup2(fd, STDERR_FILENO);
                ::close(fd);
            }
            ::execl(NOCALERT_SERVE_BIN, NOCALERT_SERVE_BIN, "--socket",
                    socket.c_str(), "--cache", cache.c_str(), "--jobs",
                    "1", "--quantum", "2", "--checkpoint-every", "1",
                    static_cast<char *>(nullptr));
            _exit(127); // exec failed.
        }
        return pid_ > 0;
    }

    bool running() const { return pid_ > 0; }

    /** The crash under test: no warning, no cleanup, no flush. */
    void kill9()
    {
        if (pid_ <= 0)
            return;
        ::kill(pid_, SIGKILL);
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }

    /** Reap after a clean client-driven shutdown. */
    bool reap()
    {
        if (pid_ <= 0)
            return true;
        int status = 0;
        const pid_t got = ::waitpid(pid_, &status, 0);
        pid_ = -1;
        return got > 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
    }

  private:
    pid_t pid_ = -1;
};

class ChaosTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_chaos_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
        socket_ = (dir_ / "sock").string();
        cache_ = (dir_ / "cache").string();
        log_ = (dir_ / "serve.log").string();

        seed_ = envUnsigned("NOCALERT_CHAOS_SEED",
                            std::random_device{}());
        rng_.seed(seed_);
        std::fprintf(stderr,
                     "chaos: NOCALERT_CHAOS_SEED=%u (export to"
                     " reproduce)\n",
                     seed_);
    }

    void TearDown() override
    {
        daemon_.kill9();
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    /** `nocalert_client <command> --socket <sock>`. */
    std::string client(const std::string &command) const
    {
        return std::string(NOCALERT_CLIENT_BIN) + " " + command +
               " --socket " + socket_;
    }

    /** Start the daemon and wait until it answers a ping. The ping
     *  itself uses the client's retry/backoff (the stale socket file
     *  of a killed predecessor refuses connections until the reclaim
     *  happens). */
    void startDaemonAndAwait()
    {
        ASSERT_TRUE(daemon_.start(socket_, cache_, log_));
        ASSERT_EQ(exitStatus(client("ping") +
                             " --retries 40 --retry-base-ms 20"
                             " >/dev/null 2>&1"),
                  0)
            << readFile(log_);
    }

    std::string specPath(const fault::CampaignConfig &spec)
    {
        const std::string path = (dir_ / "spec.json").string();
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file << fault::toJson(spec).dump();
        return path;
    }

    /** Fire-and-forget submission (detached), so the campaign is
     *  running unattended when the SIGKILL lands. */
    void submitDetached(const std::string &spec_path)
    {
        ASSERT_EQ(exitStatus(client("submit") + " --spec " + spec_path +
                             " >/dev/null 2>/dev/null"),
                  0);
    }

    /** Submit-and-wait with retries; returns the artifact bytes. */
    std::string submitAndFetch(const std::string &spec_path)
    {
        const std::string out = (dir_ / "served.json").string();
        std::error_code ec;
        fs::remove(out, ec);
        EXPECT_EQ(exitStatus(client("submit") + " --spec " + spec_path +
                             " --wait --retries 10 --retry-base-ms 20"
                             " --out " + out + " 2>/dev/null"),
                  0)
            << readFile(log_);
        return readFile(out);
    }

    std::uniform_int_distribution<int>::result_type
    below(int bound)
    {
        return std::uniform_int_distribution<int>(0, bound - 1)(rng_);
    }

    /** Flip one random byte of @p path in place. */
    void flipRandomByte(const std::string &path)
    {
        std::string bytes = readFile(path);
        if (bytes.empty())
            return;
        const std::size_t at =
            static_cast<std::size_t>(below(static_cast<int>(
                bytes.size())));
        bytes[at] = static_cast<char>(bytes[at] ^ (1u << below(8)));
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
    }

    /** Chop 1..24 random bytes off the end of @p path (a torn
     *  append). */
    void truncateTail(const std::string &path)
    {
        std::string bytes = readFile(path);
        if (bytes.empty())
            return;
        const std::size_t cut = static_cast<std::size_t>(
            1 + below(static_cast<int>(
                    std::min<std::size_t>(24, bytes.size()))));
        bytes.resize(bytes.size() - cut);
        std::ofstream file(path, std::ios::binary | std::ios::trunc);
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
    }

    /** The most recently written artifact in the cache, if any. */
    std::string newestArtifact() const
    {
        std::string newest;
        fs::file_time_type when;
        std::error_code ec;
        for (const auto &entry : fs::directory_iterator(cache_, ec)) {
            const std::string name =
                entry.path().filename().string();
            if (name.size() < 5 ||
                name.compare(name.size() - 5, 5, ".json") != 0 ||
                name.find(".ckpt.") != std::string::npos) {
                continue;
            }
            const auto time = entry.last_write_time(ec);
            if (newest.empty() || time > when) {
                newest = entry.path().string();
                when = time;
            }
        }
        return newest;
    }

    /** One flavor of post-crash damage, chosen per cycle. */
    void injectDamage(unsigned cycle)
    {
        const std::string journal =
            (fs::path(cache_) / "journal.wal").string();
        switch (cycle % 4) {
          case 0:
            break; // A plain crash: torn tails happen on their own.
          case 1:
            truncateTail(journal);
            break;
          case 2:
            flipRandomByte(journal);
            break;
          case 3:
            if (const std::string artifact = newestArtifact();
                !artifact.empty()) {
                flipRandomByte(artifact);
            }
            break;
        }
    }

    fs::path dir_;
    std::string socket_;
    std::string cache_;
    std::string log_;
    unsigned seed_ = 0;
    std::mt19937 rng_;
    Daemon daemon_;
};

TEST_F(ChaosTest, Kill9AtRandomPointsAlwaysRecoversByteIdentically)
{
    const unsigned cycles = envUnsigned("NOCALERT_CHAOS_CYCLES", 5);
    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        SCOPED_TRACE("cycle " + std::to_string(cycle) + " seed " +
                     std::to_string(seed_));
        const fault::CampaignConfig spec = tinySpec(100 + cycle);
        const std::string reference = directArtifact(spec);
        const std::string spec_path = specPath(spec);

        startDaemonAndAwait();
        submitDetached(spec_path);
        // Let the campaign advance an arbitrary amount — the kill
        // lands anywhere from "queued, never ran" to "one quantum
        // from done".
        std::this_thread::sleep_for(
            std::chrono::milliseconds(below(400)));
        daemon_.kill9();
        injectDamage(cycle);

        // Restart over the debris: stale socket, torn journal,
        // possibly flipped bytes. The daemon must come up, requeue
        // what the journal promised, and converge on the exact bytes
        // an uninterrupted run produces.
        startDaemonAndAwait();
        EXPECT_EQ(submitAndFetch(spec_path), reference);

        ASSERT_EQ(exitStatus(client("shutdown") + " >/dev/null 2>&1"),
                  0);
        EXPECT_TRUE(daemon_.reap()) << readFile(log_);
    }
}

TEST_F(ChaosTest, DamagedStoreSelfHealsAcrossARestart)
{
    const fault::CampaignConfig spec = tinySpec(77);
    const std::string reference = directArtifact(spec);
    const std::string spec_path = specPath(spec);

    // A clean first life: run to completion, shut down politely.
    startDaemonAndAwait();
    ASSERT_EQ(submitAndFetch(spec_path), reference);
    ASSERT_EQ(exitStatus(client("shutdown") + " >/dev/null 2>&1"), 0);
    ASSERT_TRUE(daemon_.reap());

    // Bit-rot both stores while the daemon is down: the completed
    // artifact and the journal that vouches for it.
    const std::string artifact = newestArtifact();
    ASSERT_FALSE(artifact.empty());
    flipRandomByte(artifact);
    truncateTail((fs::path(cache_) / "journal.wal").string());

    // The second life must detect the damage (quarantine, not serve),
    // recompute from the journalled spec, and serve the same bytes.
    startDaemonAndAwait();
    EXPECT_EQ(submitAndFetch(spec_path), reference);

    const std::string stats_path = (dir_ / "stats.txt").string();
    ASSERT_EQ(exitStatus(client("stats") + " > " + stats_path), 0);
    const std::string stats = readFile(stats_path);
    EXPECT_NE(stats.find("cacheQuarantined"), std::string::npos)
        << stats;
    ASSERT_EQ(exitStatus(client("shutdown") + " >/dev/null 2>&1"), 0);
    EXPECT_TRUE(daemon_.reap());
}

} // namespace
} // namespace nocalert::serve
