/**
 * @file
 * The workload-engine extension of the kernel-equivalence and
 * snapshot property suites: for phase-program (with and without
 * bursts) and trace-replay workloads, the active and bitmask kernels
 * must be bit-identical to the dense kernel in every observable, and
 * a network snapshotted mid-phase (or mid-replay) and resumed must
 * replay the exact phase position — the properties the campaign's
 * warm-snapshot methodology rests on.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "fault/site.hpp"
#include "noc/network.hpp"
#include "traffic/workload.hpp"

namespace nocalert::noc {
namespace {

namespace fs = std::filesystem;

using traffic::WorkloadKind;
using traffic::WorkloadSpec;

NetworkConfig
mesh4()
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

/**
 * A phase program exercising every schedule feature: a pattern and
 * rate change, an idle gap [180, 240), and a hotspot phase.
 */
WorkloadSpec
phasedWorkload(bool burst, bool repeat = false)
{
    WorkloadSpec workload;
    workload.kind = WorkloadKind::Phased;
    workload.phased.seed = 21;
    workload.phased.repeat = repeat;
    workload.phased.segments = {
        {.begin = 0,
         .end = 180,
         .pattern = TrafficPattern::UniformRandom,
         .rate = 0.08,
         .classWeights = {},
         .hotspot = {}},
        {.begin = 240,
         .end = 420,
         .pattern = TrafficPattern::Transpose,
         .rate = 0.15,
         .classWeights = {},
         .hotspot = {}},
        {.begin = 420,
         .end = 600,
         .pattern = TrafficPattern::Hotspot,
         .rate = 0.05,
         .classWeights = {},
         .hotspot = {.node = 5, .fraction = 0.5}},
    };
    if (burst) {
        workload.phased.burst.enabled = true;
        workload.phased.burst.period = 32;
        workload.phased.burst.onProbability = 0.4;
        workload.phased.burst.onMultiplier = 3.0;
        workload.phased.burst.offMultiplier = 0.1;
        workload.phased.burst.layers = 2;
    }
    return workload;
}

/** Record @p base into a temp trace and wrap it as a replay spec. */
WorkloadSpec
traceWorkload(const NetworkConfig &config, const WorkloadSpec &base,
              Cycle cycles, const std::string &tag)
{
    const fs::path file =
        fs::temp_directory_path() /
        ("nocalert_wlprop_" + std::to_string(::getpid()) + "_" + tag +
         ".trace");
    std::string error;
    EXPECT_TRUE(traffic::recordTrace(config, base, cycles, file.string(),
                                     &error))
        << error;
    WorkloadSpec replay;
    replay.kind = WorkloadKind::Trace;
    replay.trace.path = file.string();
    EXPECT_TRUE(traffic::stampTraceSpec(replay.trace, &error)) << error;
    return replay;
}

struct Observables
{
    std::vector<EjectionRecord> ejections;
    NetworkStats stats;
    std::vector<core::Assertion> alerts;
};

Observables
simulate(const NetworkConfig &config, const WorkloadSpec &workload,
         KernelMode mode, bool inject, Cycle cycles = 600)
{
    Network net(config, workload);
    net.setKernelMode(mode);
    core::NoCAlertEngine engine(net);

    fault::FaultInjector injector;
    if (inject) {
        const auto sites =
            fault::FaultSiteCatalog::sampleNetwork(config, 8, 31);
        fault::FaultSpec spec;
        spec.site = sites.at(0);
        spec.cycle = 300;
        spec.kind = fault::FaultKind::Transient;
        injector.arm(spec);
        injector.attach(net);
    }

    net.run(cycles);
    net.drain(6000);

    Observables obs;
    obs.ejections = net.collectEjections();
    obs.stats = net.stats();
    obs.alerts = engine.log().alerts();
    return obs;
}

void
expectSame(const Observables &dense, const Observables &fast,
           const char *label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(dense.ejections.size(), fast.ejections.size());
    for (std::size_t i = 0; i < dense.ejections.size(); ++i) {
        EXPECT_EQ(dense.ejections[i].cycle, fast.ejections[i].cycle);
        EXPECT_EQ(dense.ejections[i].node, fast.ejections[i].node);
        EXPECT_EQ(dense.ejections[i].flit, fast.ejections[i].flit);
    }
    EXPECT_EQ(dense.stats.packetsCreated, fast.stats.packetsCreated);
    EXPECT_EQ(dense.stats.packetsEjected, fast.stats.packetsEjected);
    EXPECT_EQ(dense.stats.flitsInjected, fast.stats.flitsInjected);
    EXPECT_EQ(dense.stats.latencySum, fast.stats.latencySum);
    ASSERT_EQ(dense.alerts.size(), fast.alerts.size());
    for (std::size_t i = 0; i < dense.alerts.size(); ++i) {
        EXPECT_EQ(dense.alerts[i].id, fast.alerts[i].id);
        EXPECT_EQ(dense.alerts[i].cycle, fast.alerts[i].cycle);
        EXPECT_EQ(dense.alerts[i].router, fast.alerts[i].router);
    }
}

struct WorkloadCase
{
    const char *name;
    bool burst;
    bool trace;   ///< Re-record the program and replay it instead.
    bool inject;
};

class WorkloadKernelEquivalence
    : public testing::TestWithParam<WorkloadCase>
{
};

TEST_P(WorkloadKernelEquivalence, FastKernelsBitIdenticalToDense)
{
    const WorkloadCase &c = GetParam();
    const NetworkConfig config = mesh4();
    WorkloadSpec workload = phasedWorkload(c.burst);
    if (c.trace)
        workload = traceWorkload(config, workload, 600, c.name);

    const Observables dense =
        simulate(config, workload, KernelMode::Dense, c.inject);
    const Observables active =
        simulate(config, workload, KernelMode::Active, c.inject);
    const Observables bitmask =
        simulate(config, workload, KernelMode::Bitmask, c.inject);

    // The run must actually move packets for the comparison to mean
    // anything.
    EXPECT_GT(dense.stats.packetsEjected, 0u);
    expectSame(dense, active, "active");
    expectSame(dense, bitmask, "bitmask");

    if (workload.kind == WorkloadKind::Trace) {
        std::error_code ec;
        fs::remove(workload.trace.path, ec);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadKernelEquivalence,
    testing::Values(
        WorkloadCase{"phased", false, false, false},
        WorkloadCase{"phased_fault", false, false, true},
        WorkloadCase{"bursty", true, false, false},
        WorkloadCase{"bursty_fault", true, false, true},
        WorkloadCase{"trace", false, true, false},
        WorkloadCase{"trace_fault", false, true, true},
        WorkloadCase{"bursty_trace", true, true, false}),
    [](const testing::TestParamInfo<WorkloadCase> &info) {
        return info.param.name;
    });

struct SplitCase
{
    const char *name;
    Cycle split;
    bool burst;
    bool trace;
};

class WorkloadSnapshotProperty : public testing::TestWithParam<SplitCase>
{
};

TEST_P(WorkloadSnapshotProperty, MidPhaseCopyResumesExactly)
{
    const SplitCase &c = GetParam();
    const NetworkConfig config = mesh4();
    WorkloadSpec workload = phasedWorkload(c.burst);
    if (c.trace)
        workload = traceWorkload(config, workload, 600,
                                 std::string("snap_") + c.name);

    Network straight(config, workload);
    Network split_run(config, workload);

    split_run.run(c.split);
    Network resumed(split_run); // the warm snapshot
    straight.run(600);
    resumed.run(600 - c.split);

    ASSERT_TRUE(straight.drain(8000));
    ASSERT_TRUE(resumed.drain(8000));

    const auto ea = straight.collectEjections();
    const auto eb = resumed.collectEjections();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].cycle, eb[i].cycle);
        EXPECT_EQ(ea[i].node, eb[i].node);
        EXPECT_EQ(ea[i].flit, eb[i].flit);
    }
    EXPECT_EQ(straight.stats().packetsCreated,
              resumed.stats().packetsCreated);
    EXPECT_EQ(straight.stats().latencySum, resumed.stats().latencySum);
    EXPECT_GT(straight.stats().packetsEjected, 0u);

    if (workload.kind == WorkloadKind::Trace) {
        std::error_code ec;
        fs::remove(workload.trace.path, ec);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Splits, WorkloadSnapshotProperty,
    testing::Values(
        // Mid-first-phase, inside the idle gap, mid-second-phase,
        // and inside the hotspot tail — for both backends.
        SplitCase{"phase0", 90, false, false},
        SplitCase{"gap", 200, false, false},
        SplitCase{"phase1", 300, true, false},
        SplitCase{"hotspot", 500, false, false},
        SplitCase{"trace_mid", 130, false, true},
        SplitCase{"trace_gap", 210, true, true}),
    [](const testing::TestParamInfo<SplitCase> &info) {
        return info.param.name;
    });

TEST(WorkloadRepeatProperty, RepeatingProgramKeepsInjecting)
{
    // A wrapped program must keep generating past its nominal end and
    // stay kernel-equivalent while doing so.
    const NetworkConfig config = mesh4();
    WorkloadSpec workload = phasedWorkload(false, /*repeat=*/true);
    workload.setStopCycle(900);

    const Observables dense =
        simulate(config, workload, KernelMode::Dense, false, 900);
    const Observables bitmask =
        simulate(config, workload, KernelMode::Bitmask, false, 900);
    expectSame(dense, bitmask, "bitmask");

    // Cycles 600..900 wrap back into phase 0: more packets than the
    // non-repeating program can make.
    WorkloadSpec once = phasedWorkload(false, /*repeat=*/false);
    once.setStopCycle(900);
    const Observables single =
        simulate(config, once, KernelMode::Dense, false, 900);
    EXPECT_GT(dense.stats.packetsCreated, single.stats.packetsCreated);
}

} // namespace
} // namespace nocalert::noc
