/**
 * @file
 * Property sweep: across mesh sizes, VC counts, buffer depths,
 * routing algorithms, injection rates, and seeds, a healthy network
 * must deliver every flit exactly once, in order, at its destination.
 */

#include <gtest/gtest.h>

#include <map>

#include "noc/network.hpp"

namespace nocalert::noc {
namespace {

struct DeliveryCase
{
    int width;
    int height;
    unsigned vcs;
    unsigned depth;
    RoutingAlgo routing;
    bool atomic;
    bool speculative;
    double rate;
    std::uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<DeliveryCase> &info)
{
    const DeliveryCase &c = info.param;
    std::string name = std::to_string(c.width) + "x" +
                       std::to_string(c.height) + "_v" +
                       std::to_string(c.vcs) + "_d" +
                       std::to_string(c.depth) + "_" +
                       routingAlgoName(c.routing);
    name += c.atomic ? "_atomic" : "_nonatomic";
    if (c.speculative)
        name += "_spec";
    name += "_r" + std::to_string(static_cast<int>(c.rate * 1000));
    name += "_s" + std::to_string(c.seed);
    return name;
}

class DeliveryProperty : public testing::TestWithParam<DeliveryCase>
{
};

TEST_P(DeliveryProperty, ExactlyOnceInOrderDelivery)
{
    const DeliveryCase &c = GetParam();
    NetworkConfig config;
    config.width = c.width;
    config.height = c.height;
    config.router.numVcs = c.vcs;
    config.router.bufferDepth = c.depth;
    config.router.atomicBuffers = c.atomic;
    config.router.speculative = c.speculative;
    config.routing = c.routing;
    if (c.vcs == 1)
        config.router.classes = {{"data", std::uint16_t(
            std::min<unsigned>(5, c.depth))}};
    else
        config.router.classes = {
            {"ctrl", 1},
            {"data", std::uint16_t(std::min<unsigned>(5, c.depth))}};

    TrafficSpec traffic;
    traffic.injectionRate = c.rate;
    traffic.seed = c.seed;
    traffic.stopCycle = 700;

    Network net(config, traffic);
    net.run(700);
    ASSERT_TRUE(net.drain(8000)) << "network failed to drain";

    const NetworkStats stats = net.stats();
    EXPECT_EQ(stats.packetsCreated, stats.packetsInjected);
    EXPECT_EQ(stats.flitsInjected, stats.flitsEjected);
    EXPECT_EQ(stats.packetsInjected, stats.packetsEjected);

    std::map<std::pair<PacketId, std::uint16_t>, int> seen;
    std::map<PacketId, int> order;
    for (const EjectionRecord &rec : net.collectEjections()) {
        EXPECT_EQ(rec.flit.dst, rec.node);
        ++seen[{rec.flit.packet, rec.flit.seq}];
        auto [it, fresh] = order.try_emplace(rec.flit.packet, 0);
        EXPECT_EQ(rec.flit.seq, it->second);
        ++it->second;
    }
    for (const auto &[key, count] : seen)
        EXPECT_EQ(count, 1);
}

INSTANTIATE_TEST_SUITE_P(
    MeshSizes, DeliveryProperty,
    testing::Values(
        DeliveryCase{2, 2, 4, 5, RoutingAlgo::XY, true, false, 0.05, 1},
        DeliveryCase{3, 5, 4, 5, RoutingAlgo::XY, true, false, 0.05, 2},
        DeliveryCase{8, 8, 4, 5, RoutingAlgo::XY, true, false, 0.03, 3},
        DeliveryCase{6, 3, 4, 5, RoutingAlgo::XY, true, false, 0.05, 4}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    VcAndDepth, DeliveryProperty,
    testing::Values(
        DeliveryCase{4, 4, 1, 5, RoutingAlgo::XY, true, false, 0.03, 5},
        DeliveryCase{4, 4, 2, 5, RoutingAlgo::XY, true, false, 0.05, 6},
        DeliveryCase{4, 4, 8, 5, RoutingAlgo::XY, true, false, 0.05, 7},
        DeliveryCase{4, 4, 4, 2, RoutingAlgo::XY, true, false, 0.05, 8},
        DeliveryCase{4, 4, 4, 8, RoutingAlgo::XY, true, false, 0.08, 9}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    RoutingAlgos, DeliveryProperty,
    testing::Values(
        DeliveryCase{5, 5, 4, 5, RoutingAlgo::YX, true, false, 0.05, 10},
        DeliveryCase{5, 5, 4, 5, RoutingAlgo::WestFirst, true, false,
                     0.05, 11},
        DeliveryCase{5, 5, 4, 5, RoutingAlgo::O1Turn, true, false, 0.05,
                     12}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    Variants, DeliveryProperty,
    testing::Values(
        DeliveryCase{4, 4, 4, 5, RoutingAlgo::XY, false, false, 0.05, 13},
        DeliveryCase{4, 4, 4, 5, RoutingAlgo::XY, true, true, 0.05, 14},
        DeliveryCase{4, 4, 4, 5, RoutingAlgo::XY, false, true, 0.05, 15}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    LoadLevels, DeliveryProperty,
    testing::Values(
        DeliveryCase{4, 4, 4, 5, RoutingAlgo::XY, true, false, 0.01, 16},
        DeliveryCase{4, 4, 4, 5, RoutingAlgo::XY, true, false, 0.10, 17},
        DeliveryCase{4, 4, 4, 5, RoutingAlgo::XY, true, false, 0.20, 18}),
    caseName);

} // namespace
} // namespace nocalert::noc
