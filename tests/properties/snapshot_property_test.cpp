/**
 * @file
 * Property sweep: copying a network mid-flight and resuming must be
 * indistinguishable from an uninterrupted run — the foundation of the
 * campaign's warm-snapshot methodology.
 */

#include <gtest/gtest.h>

#include "core/nocalert.hpp"
#include "noc/network.hpp"

namespace nocalert::noc {
namespace {

struct SnapshotCase
{
    Cycle split;     ///< Cycle at which the snapshot is taken.
    double rate;
    std::uint64_t seed;
    unsigned vcs;
};

std::string
caseName(const testing::TestParamInfo<SnapshotCase> &info)
{
    const SnapshotCase &c = info.param;
    return "split" + std::to_string(c.split) + "_r" +
           std::to_string(static_cast<int>(c.rate * 1000)) + "_s" +
           std::to_string(c.seed) + "_v" + std::to_string(c.vcs);
}

class SnapshotProperty : public testing::TestWithParam<SnapshotCase>
{
};

TEST_P(SnapshotProperty, CopyResumeEqualsStraightRun)
{
    const SnapshotCase &c = GetParam();
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.router.numVcs = c.vcs;

    TrafficSpec traffic;
    traffic.injectionRate = c.rate;
    traffic.seed = c.seed;
    traffic.stopCycle = c.split + 400;

    Network straight(config, traffic);
    Network split_run(config, traffic);

    split_run.run(c.split);
    Network resumed(split_run); // snapshot
    straight.run(c.split + 400);
    resumed.run(400);

    ASSERT_TRUE(straight.drain(6000));
    ASSERT_TRUE(resumed.drain(6000));

    const auto ea = straight.collectEjections();
    const auto eb = resumed.collectEjections();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].cycle, eb[i].cycle);
        EXPECT_EQ(ea[i].node, eb[i].node);
        EXPECT_EQ(ea[i].flit, eb[i].flit);
    }

    const NetworkStats sa = straight.stats();
    const NetworkStats sb = resumed.stats();
    EXPECT_EQ(sa.packetsEjected, sb.packetsEjected);
    EXPECT_EQ(sa.latencySum, sb.latencySum);
}

INSTANTIATE_TEST_SUITE_P(
    Splits, SnapshotProperty,
    testing::Values(SnapshotCase{0, 0.05, 1, 4},
                    SnapshotCase{1, 0.05, 2, 4},
                    SnapshotCase{137, 0.08, 3, 4},
                    SnapshotCase{500, 0.05, 4, 4},
                    SnapshotCase{250, 0.12, 5, 4},
                    SnapshotCase{250, 0.05, 6, 2},
                    SnapshotCase{250, 0.05, 7, 8}),
    caseName);

TEST(SnapshotProperty, CheckersStayQuietAfterResume)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    TrafficSpec traffic;
    traffic.injectionRate = 0.08;
    traffic.seed = 17;

    Network base(config, traffic);
    base.run(300);
    Network copy(base);
    core::NoCAlertEngine engine(copy);
    copy.run(600);
    EXPECT_EQ(engine.log().count(), 0u);
}

TEST(SnapshotProperty, MidFlightCopyCarriesTheActiveSet)
{
    // Snapshot while flits are in flight everywhere: the copy must
    // rebuild its active set from the copied state (not inherit the
    // original's pins or caches) and still resume bit-exactly.
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    TrafficSpec traffic;
    traffic.injectionRate = 0.1;
    traffic.seed = 31;
    traffic.stopCycle = 500;

    Network a(config, traffic);
    // Pins on the original must not leak into copies.
    a.setTapHook([](Router &, TapPoint, RouterWires &) {});
    a.run(250);
    ASSERT_FALSE(a.quiescent()); // mid-flight, active set populated

    Network b(a);
    a.setTapHook(nullptr);
    a.run(250);
    b.run(250);
    ASSERT_TRUE(a.drain(6000));
    ASSERT_TRUE(b.drain(6000));

    const auto ea = a.collectEjections();
    const auto eb = b.collectEjections();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].cycle, eb[i].cycle);
        EXPECT_EQ(ea[i].node, eb[i].node);
        EXPECT_EQ(ea[i].flit, eb[i].flit);
    }
    EXPECT_EQ(a.stats().latencySum, b.stats().latencySum);
}

TEST(SnapshotProperty, CrossKernelResumeIsBitExact)
{
    // A dense-warmed snapshot resumed on the active kernel (and the
    // reverse) must match a straight dense run: the kernels share one
    // state space, so mode is a per-instance execution detail.
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    TrafficSpec traffic;
    traffic.injectionRate = 0.08;
    traffic.seed = 41;
    traffic.stopCycle = 400;

    Network dense(config, traffic);
    dense.setKernelMode(KernelMode::Dense);
    dense.run(200);

    Network on_active(dense);
    on_active.setKernelMode(KernelMode::Active);
    Network on_dense(dense);

    dense.run(200);
    on_active.run(200);
    on_dense.run(200);
    ASSERT_TRUE(dense.drain(6000));
    ASSERT_TRUE(on_active.drain(6000));
    ASSERT_TRUE(on_dense.drain(6000));

    const auto ed = dense.collectEjections();
    for (const Network *net : {&on_active, &on_dense}) {
        const auto e = net->collectEjections();
        ASSERT_EQ(ed.size(), e.size());
        for (std::size_t i = 0; i < ed.size(); ++i) {
            EXPECT_EQ(ed[i].cycle, e[i].cycle);
            EXPECT_EQ(ed[i].node, e[i].node);
            EXPECT_EQ(ed[i].flit, e[i].flit);
        }
        EXPECT_EQ(dense.stats().latencySum, net->stats().latencySum);
    }
}

TEST(SnapshotProperty, AssignmentAlsoSnapshots)
{
    NetworkConfig config;
    config.width = 3;
    config.height = 3;
    TrafficSpec traffic;
    traffic.injectionRate = 0.1;
    traffic.stopCycle = 400;

    Network a(config, traffic);
    a.run(200);
    Network b(config, traffic);
    b = a;
    a.run(300);
    b.run(300);
    EXPECT_EQ(a.stats().flitsEjected, b.stats().flitsEjected);
    EXPECT_EQ(a.cycle(), b.cycle());
}

} // namespace
} // namespace nocalert::noc
