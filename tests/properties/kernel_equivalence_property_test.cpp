/**
 * @file
 * Differential proof of the fast kernels: for every configuration in
 * the matrix — injection rates, seeds, VC counts, mesh sizes, with
 * and without injected faults (warm and cycle-0), detection-only and
 * full recovery stack — a simulation on the active kernel AND one on
 * the bitmask kernel must each be bit-identical to the same
 * simulation on the dense kernel in every observable: the ejection
 * logs (cycle, node, flit), the aggregate statistics, and the
 * complete NoCAlert assertion stream. This harness is what licenses
 * shipping the bitmask kernel as the default.
 */

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "fault/site.hpp"
#include "noc/network.hpp"
#include "recovery/orchestrator.hpp"

namespace nocalert::noc {
namespace {

struct KernelCase
{
    int mesh;             ///< Mesh width == height.
    unsigned vcs;
    double rate;
    std::uint64_t seed;
    bool inject;          ///< Arm a fault.
    Cycle onset;          ///< Fault onset cycle (0 = cycle-0 fault).
    std::uint64_t siteSeed;
    /** Full recovery stack: end-to-end retransmission, QAdaptive
     *  routing, and the quarantine-and-purge orchestrator. */
    bool recovery = false;
    fault::FaultKind kind = fault::FaultKind::Transient;
    /** Enable the extended (group-9) output-table checks. */
    bool extended = false;
};

std::string
caseName(const testing::TestParamInfo<KernelCase> &info)
{
    const KernelCase &c = info.param;
    std::string name = "m" + std::to_string(c.mesh) + "_v" +
                       std::to_string(c.vcs) + "_r" +
                       std::to_string(static_cast<int>(c.rate * 1000)) +
                       "_s" + std::to_string(c.seed);
    if (c.inject)
        name += "_f" + std::to_string(c.onset) + "_ss" +
                std::to_string(c.siteSeed);
    if (c.kind == fault::FaultKind::Permanent)
        name += "_perm";
    if (c.recovery)
        name += "_rec";
    if (c.extended)
        name += "_ext";
    return name;
}

/** Everything a run can externally produce. */
struct RunObservables
{
    std::vector<EjectionRecord> ejections;
    NetworkStats stats;
    std::vector<core::Assertion> alerts;
    std::uint64_t routerEvals = 0;

    // Recovery-stack observables (zero without recovery).
    std::uint64_t retransmits = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t abandoned = 0;
    unsigned recoveryActions = 0;
    std::uint64_t purgedFlits = 0;
};

RunObservables
simulate(const KernelCase &c, KernelMode mode)
{
    NetworkConfig config;
    config.width = c.mesh;
    config.height = c.mesh;
    config.router.numVcs = c.vcs;
    config.router.extendedChecks = c.extended;
    if (c.recovery) {
        config.retransmit.enabled = true;
        config.routing = RoutingAlgo::QAdaptive;
    }

    TrafficSpec traffic;
    traffic.injectionRate = c.rate;
    traffic.seed = c.seed;
    traffic.stopCycle = 600;

    Network net(config, traffic);
    net.setKernelMode(mode);
    core::NoCAlertEngine engine(net);

    std::optional<recovery::RecoveryOrchestrator> orch;
    if (c.recovery) {
        orch.emplace(net, engine);
        net.setCycleObserver([&](const Network &n) {
            orch->onCycleEnd(n.cycle());
        });
    }

    fault::FaultInjector injector;
    if (c.inject) {
        const auto sites = fault::FaultSiteCatalog::sampleNetwork(
            config, 8, c.siteSeed);
        fault::FaultSpec spec;
        spec.site = sites.at(0);
        spec.cycle = c.onset;
        spec.kind = c.kind;
        injector.arm(spec);
        injector.attach(net);
    }

    net.run(600);
    net.drain(c.recovery ? 8000 : 6000);

    RunObservables obs;
    obs.ejections = net.collectEjections();
    obs.stats = net.stats();
    obs.alerts = engine.log().alerts();
    obs.routerEvals = net.routerEvaluations();
    for (NodeId node = 0; node < config.numNodes(); ++node) {
        obs.retransmits += net.ni(node).retransmits();
        obs.duplicates += net.ni(node).duplicatesSuppressed();
        obs.abandoned += net.ni(node).packetsAbandoned();
    }
    if (orch) {
        obs.recoveryActions = orch->stats().actions;
        obs.purgedFlits = orch->stats().purgedFlits;
    }
    return obs;
}

/** Field-by-field comparison of @p fast against the dense oracle. */
void
expectSameObservables(const RunObservables &dense,
                      const RunObservables &fast, const char *label)
{
    SCOPED_TRACE(label);

    // Ejection logs: same flits at the same nodes at the same cycles.
    ASSERT_EQ(dense.ejections.size(), fast.ejections.size());
    for (std::size_t i = 0; i < dense.ejections.size(); ++i) {
        EXPECT_EQ(dense.ejections[i].cycle, fast.ejections[i].cycle);
        EXPECT_EQ(dense.ejections[i].node, fast.ejections[i].node);
        EXPECT_EQ(dense.ejections[i].flit, fast.ejections[i].flit);
    }

    // Statistics.
    EXPECT_EQ(dense.stats.packetsCreated, fast.stats.packetsCreated);
    EXPECT_EQ(dense.stats.packetsInjected, fast.stats.packetsInjected);
    EXPECT_EQ(dense.stats.packetsEjected, fast.stats.packetsEjected);
    EXPECT_EQ(dense.stats.flitsInjected, fast.stats.flitsInjected);
    EXPECT_EQ(dense.stats.flitsEjected, fast.stats.flitsEjected);
    EXPECT_EQ(dense.stats.latencySum, fast.stats.latencySum);

    // Complete assertion streams, field by field, in arrival order.
    ASSERT_EQ(dense.alerts.size(), fast.alerts.size());
    for (std::size_t i = 0; i < dense.alerts.size(); ++i) {
        EXPECT_EQ(dense.alerts[i].id, fast.alerts[i].id);
        EXPECT_EQ(dense.alerts[i].cycle, fast.alerts[i].cycle);
        EXPECT_EQ(dense.alerts[i].router, fast.alerts[i].router);
        EXPECT_EQ(dense.alerts[i].port, fast.alerts[i].port);
        EXPECT_EQ(dense.alerts[i].vc, fast.alerts[i].vc);
    }

    // The recovery stack's own observables: retransmission counters
    // and quarantine-and-purge actions must agree exactly too.
    EXPECT_EQ(dense.retransmits, fast.retransmits);
    EXPECT_EQ(dense.duplicates, fast.duplicates);
    EXPECT_EQ(dense.abandoned, fast.abandoned);
    EXPECT_EQ(dense.recoveryActions, fast.recoveryActions);
    EXPECT_EQ(dense.purgedFlits, fast.purgedFlits);
}

class KernelEquivalence : public testing::TestWithParam<KernelCase>
{
};

TEST_P(KernelEquivalence, FastKernelsBitIdenticalToDense)
{
    const KernelCase &c = GetParam();
    const RunObservables dense = simulate(c, KernelMode::Dense);
    const RunObservables active = simulate(c, KernelMode::Active);
    const RunObservables bitmask = simulate(c, KernelMode::Bitmask);

    expectSameObservables(dense, active, "active");
    expectSameObservables(dense, bitmask, "bitmask");

    // The bitmask kernel inherits the active kernel's scheduling
    // verbatim: the same routers must be evaluated on the same cycles.
    EXPECT_EQ(active.routerEvals, bitmask.routerEvals);

    // And the fast kernels must actually have skipped work (at these
    // loads a dense run evaluates strictly more routers), except when
    // a raw tap pin forces density.
    if (!c.inject) {
        EXPECT_LT(active.routerEvals, dense.routerEvals);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, KernelEquivalence,
    testing::Values(
        // Clean runs across rates, seeds, VC counts, mesh sizes.
        KernelCase{4, 4, 0.02, 1, false, 0, 0},
        KernelCase{4, 4, 0.05, 2, false, 0, 0},
        KernelCase{4, 4, 0.12, 3, false, 0, 0},
        KernelCase{4, 2, 0.05, 4, false, 0, 0},
        KernelCase{4, 8, 0.05, 5, false, 0, 0},
        KernelCase{3, 4, 0.08, 6, false, 0, 0},
        KernelCase{8, 4, 0.05, 7, false, 0, 0},
        KernelCase{6, 4, 0.20, 8, false, 0, 0},
        // Injected faults: cycle-0 (idle network) and warm.
        KernelCase{4, 4, 0.05, 10, true, 0, 21},
        KernelCase{4, 4, 0.05, 11, true, 0, 22},
        KernelCase{4, 4, 0.08, 12, true, 300, 23},
        KernelCase{4, 4, 0.05, 13, true, 300, 24},
        KernelCase{4, 2, 0.08, 14, true, 150, 25},
        KernelCase{5, 4, 0.05, 15, true, 450, 26},
        // Recovery stack: clean (protocol overhead only), transient
        // faults, and permanent faults that exercise quarantine,
        // purge, retransmission, and the retry-pending active set.
        KernelCase{4, 4, 0.05, 30, false, 0, 0, true},
        KernelCase{4, 4, 0.08, 31, true, 300, 41, true},
        KernelCase{4, 4, 0.05, 32, true, 150, 42, true,
                   fault::FaultKind::Permanent},
        KernelCase{5, 4, 0.05, 33, true, 300, 43, true,
                   fault::FaultKind::Permanent},
        KernelCase{4, 2, 0.08, 34, true, 0, 44, true,
                   fault::FaultKind::Intermittent},
        // Extended (group-9) checks: the bitmask fast path re-derives
        // suspectOut after every fast cycle, so these runs exercise
        // that screen clean and faulted.
        KernelCase{4, 4, 0.08, 50, false, 0, 0, false,
                   fault::FaultKind::Transient, true},
        KernelCase{4, 4, 0.05, 51, true, 300, 52, false,
                   fault::FaultKind::Transient, true}),
    caseName);

TEST(KernelEquivalence, CheckerShortcutMatchesUngatedBank)
{
    // Every wire record a live network produces must yield the same
    // assertion list with and without the per-port quiescence
    // shortcut.
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    TrafficSpec traffic;
    traffic.injectionRate = 0.1;
    traffic.seed = 99;
    traffic.stopCycle = 300;

    Network net(config, traffic);
    core::CheckerContext ctx{&net.config(), &net.routing()};
    std::uint64_t records = 0;
    net.setRouterObserver([&](const Router &router,
                              const RouterWires &wires) {
        std::vector<core::Assertion> gated;
        std::vector<core::Assertion> full;
        core::evaluateCheckers(router, wires, ctx, gated, true);
        core::evaluateCheckers(router, wires, ctx, full, false);
        ASSERT_EQ(gated.size(), full.size());
        ++records;
    });
    net.run(400);
    EXPECT_GT(records, 0u);
}

TEST(KernelEquivalence, DenseCampaignTailDominatesActiveWins)
{
    // The campaign shape: generation stops, the network drains, then
    // a long quiescent tail runs for the ForEVeR epoch horizon. The
    // active kernel's cost in the tail must be near zero.
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    TrafficSpec traffic;
    traffic.injectionRate = 0.05;
    traffic.seed = 7;
    traffic.stopCycle = 200;

    Network net(config, traffic);
    net.run(200);
    ASSERT_TRUE(net.drain(4000));
    const std::uint64_t before = net.routerEvaluations();
    net.run(1500); // quiescent tail
    // drain() keys off buffered/in-flight flits, so a straggler
    // credit may still wake a router once; beyond that the tail must
    // be free (a dense tail would cost 16 * 1500 evaluations).
    EXPECT_LE(net.routerEvaluations() - before, 16u);
}

} // namespace
} // namespace nocalert::noc
