/**
 * @file
 * Property sweep: NoCAlert raises ZERO assertions on a healthy
 * network, whatever the configuration, traffic pattern, or load.
 * This is the foundation of the paper's classification methodology —
 * any assertion in a fault-injected run is attributable to the fault.
 */

#include <gtest/gtest.h>

#include "core/nocalert.hpp"
#include "forever/forever.hpp"
#include "noc/network.hpp"

namespace nocalert::core {
namespace {

struct CleanCase
{
    unsigned vcs;
    bool atomic;
    bool speculative;
    noc::RoutingAlgo routing;
    noc::TrafficPattern pattern;
    double rate;
    std::uint64_t seed;
};

std::string
caseName(const testing::TestParamInfo<CleanCase> &info)
{
    const CleanCase &c = info.param;
    std::string name = std::string("v") + std::to_string(c.vcs);
    name += c.atomic ? "_atomic" : "_nonatomic";
    if (c.speculative)
        name += "_spec";
    name += std::string("_") + routingAlgoName(c.routing);
    name += std::string("_") + trafficPatternName(c.pattern);
    name += "_r" + std::to_string(static_cast<int>(c.rate * 1000));
    name += "_s" + std::to_string(c.seed);
    for (char &ch : name)
        if (ch == '-')
            ch = '_';
    return name;
}

class CleanRunProperty : public testing::TestWithParam<CleanCase>
{
};

TEST_P(CleanRunProperty, NoFalseAlarms)
{
    const CleanCase &c = GetParam();
    noc::NetworkConfig config;
    config.width = 5;
    config.height = 5;
    config.router.numVcs = c.vcs;
    config.router.atomicBuffers = c.atomic;
    config.router.speculative = c.speculative;
    config.routing = c.routing;
    if (c.vcs == 1)
        config.router.classes = {{"data", 5}};

    noc::TrafficSpec traffic;
    traffic.pattern = c.pattern;
    traffic.injectionRate = c.rate;
    traffic.seed = c.seed;
    traffic.stopCycle = 1200;

    noc::Network net(config, traffic);
    NoCAlertEngine engine(net);
    net.run(1200);
    net.drain(8000);

    EXPECT_EQ(engine.log().count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Microarchitectures, CleanRunProperty,
    testing::Values(
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 1},
        CleanCase{2, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 2},
        CleanCase{8, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 3},
        CleanCase{1, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.03, 4},
        CleanCase{4, false, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 5},
        CleanCase{4, true, true, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 6},
        CleanCase{4, false, true, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 7}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    RoutingAndPatterns, CleanRunProperty,
    testing::Values(
        CleanCase{4, true, false, noc::RoutingAlgo::YX,
                  noc::TrafficPattern::UniformRandom, 0.05, 8},
        CleanCase{4, true, false, noc::RoutingAlgo::WestFirst,
                  noc::TrafficPattern::UniformRandom, 0.05, 9},
        CleanCase{4, true, false, noc::RoutingAlgo::O1Turn,
                  noc::TrafficPattern::UniformRandom, 0.05, 10},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::Transpose, 0.05, 11},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::BitComplement, 0.05, 12},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::Tornado, 0.05, 13},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::Hotspot, 0.04, 14},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::Shuffle, 0.05, 20},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::BitReverse, 0.05, 21},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::Neighbor, 0.08, 22}),
    caseName);

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, CleanRunProperty,
    testing::Values(
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.01, 15},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.10, 16},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.18, 17},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 18},
        CleanCase{4, true, false, noc::RoutingAlgo::XY,
                  noc::TrafficPattern::UniformRandom, 0.05, 19}),
    caseName);

TEST(CleanRunForever, NoFalseAlarmsAtModerateLoad)
{
    noc::NetworkConfig config;
    config.width = 5;
    config.height = 5;
    noc::TrafficSpec traffic;
    traffic.injectionRate = 0.05;
    traffic.seed = 3;

    noc::Network net(config, traffic);
    forever::ForeverModel fever(net, {});
    net.run(4000); // several 1,500-cycle epochs
    EXPECT_TRUE(fever.alerts().empty());
}

} // namespace
} // namespace nocalert::core
