/**
 * @file
 * The paper's headline property, as a test: across a stratified sample
 * of single-bit transient faults, NoCAlert exhibits ZERO false
 * negatives — every run that violates network correctness raises at
 * least one assertion — and the Observation-5 dichotomy holds: faults
 * that never trip a checker never violate correctness.
 */

#include <gtest/gtest.h>

#include "fault/campaign.hpp"

namespace nocalert::fault {
namespace {

struct FaultCase
{
    noc::Cycle warmup;
    double rate;
    std::uint64_t site_seed;
    std::uint64_t traffic_seed;
    FaultKind kind;
};

std::string
caseName(const testing::TestParamInfo<FaultCase> &info)
{
    const FaultCase &c = info.param;
    return std::string(faultKindName(c.kind)) + "_w" +
           std::to_string(c.warmup) + "_r" +
           std::to_string(static_cast<int>(c.rate * 1000)) + "_ss" +
           std::to_string(c.site_seed) + "_ts" +
           std::to_string(c.traffic_seed);
}

class FaultProperty : public testing::TestWithParam<FaultCase>
{
};

TEST_P(FaultProperty, NoFalseNegativesAndObservation5)
{
    const FaultCase &c = GetParam();
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = c.rate;
    config.workload.synthetic.seed = c.traffic_seed;
    config.warmup = c.warmup;
    config.observeWindow = 1000;
    config.drainLimit = 5000;
    config.kind = c.kind;
    config.maxSites = 30;
    config.sampleSeed = c.site_seed;
    config.runForever = false; // NoCAlert-focused property

    const CampaignResult result = FaultCampaign(config).run();
    const CampaignSummary summary = result.summarize();

    // Zero false negatives: every correctness violation was detected.
    for (const FaultRunResult &run : result.runs) {
        EXPECT_FALSE(run.violated && !run.detected)
            << "FALSE NEGATIVE at " << run.site.describe();
    }

    // Observation 5: no alert ever => benign.
    EXPECT_EQ(summary.noInstantViolatedUndetected, 0u);

    // Outcomes partition the runs.
    std::uint64_t total = 0;
    for (std::uint64_t n : summary.nocalert)
        total += n;
    EXPECT_EQ(total, summary.runs);
}

INSTANTIATE_TEST_SUITE_P(
    TransientSweep, FaultProperty,
    testing::Values(
        FaultCase{0, 0.05, 1, 10, FaultKind::Transient},
        FaultCase{0, 0.10, 2, 11, FaultKind::Transient},
        FaultCase{400, 0.05, 3, 12, FaultKind::Transient},
        FaultCase{400, 0.08, 4, 13, FaultKind::Transient},
        FaultCase{400, 0.05, 5, 14, FaultKind::Transient},
        FaultCase{800, 0.04, 6, 15, FaultKind::Transient}),
    caseName);

TEST(FaultProperty, DetectionLatencyIsSmallForTransients)
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.06;
    config.warmup = 300;
    config.observeWindow = 1000;
    config.drainLimit = 5000;
    config.maxSites = 40;
    config.runForever = false;

    const CampaignSummary summary =
        FaultCampaign(config).run().summarize();
    if (!summary.detectionLatency.empty()) {
        // Paper: 97% same-cycle, 100% within 28 cycles. Allow slack
        // for our finer-grained fault surface.
        EXPECT_GE(summary.detectionLatency.cdfAt(0), 0.6);
        EXPECT_LE(summary.detectionLatency.max(), 200);
    }
}

TEST(FaultProperty, ForeverAlsoHasNoFalseNegativesHere)
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 23;
    config.warmup = 300;
    config.observeWindow = 1500;
    config.drainLimit = 6000;
    config.maxSites = 25;
    config.forever.epochLength = 400;

    const CampaignResult result = FaultCampaign(config).run();
    for (const FaultRunResult &run : result.runs) {
        EXPECT_FALSE(run.violated && !run.foreverDetected)
            << "ForEVeR false negative at " << run.site.describe();
        // And ForEVeR is never *faster* than NoCAlert's assertions.
        if (run.detected && run.foreverDetected) {
            EXPECT_LE(run.detectionLatency, run.foreverLatency)
                << run.site.describe();
        }
    }
}

} // namespace
} // namespace nocalert::fault
