#include "noc/trace.hpp"

#include <gtest/gtest.h>

#include "noc/network.hpp"

namespace nocalert::noc {
namespace {

NetworkConfig
mesh()
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

TrafficSpec
traffic(double rate = 0.1)
{
    TrafficSpec spec;
    spec.injectionRate = rate;
    spec.seed = 77;
    return spec;
}

void
attach(Network &net, TraceRecorder &recorder)
{
    net.setRouterObserver(
        [&recorder](const Router &router, const RouterWires &wires) {
            recorder.observeRouter(router, wires);
        });
    net.setNiObserver(
        [&recorder](const NetworkInterface &ni, const NiWires &wires) {
            recorder.observeNi(ni, wires);
        });
}

TEST(Trace, RecordsLifecycleOfAPacket)
{
    Network net(mesh(), traffic());
    TraceRecorder recorder;
    attach(net, recorder);
    net.run(300);

    ASSERT_FALSE(recorder.events().empty());

    // Find one injected packet and check its lifecycle events exist.
    PacketId packet = kInvalidPacket;
    for (const TraceEvent &event : recorder.events()) {
        if (event.kind == TraceKind::Inject) {
            packet = event.flit.packet;
            break;
        }
    }
    ASSERT_NE(packet, kInvalidPacket);

    bool wrote = false;
    bool routed = false;
    bool ejected = false;
    for (const TraceEvent &event : recorder.events()) {
        if (event.flit.packet != packet)
            continue;
        wrote |= event.kind == TraceKind::BufferWrite;
        routed |= event.kind == TraceKind::RcDone;
        ejected |= event.kind == TraceKind::Eject;
    }
    EXPECT_TRUE(wrote);
    EXPECT_TRUE(routed);
}

TEST(Trace, EventsRenderReadably)
{
    TraceEvent event;
    event.kind = TraceKind::SaGrant;
    event.cycle = 120;
    event.router = 5;
    event.port = portIndex(Port::East);
    event.vc = 2;
    const std::string text = event.toString();
    EXPECT_NE(text.find("c=120"), std::string::npos);
    EXPECT_NE(text.find("r5"), std::string::npos);
    EXPECT_NE(text.find("SA"), std::string::npos);
    EXPECT_NE(text.find("p=E"), std::string::npos);
}

TEST(Trace, RouterFilterRestricts)
{
    Network net(mesh(), traffic());
    TraceRecorder recorder;
    recorder.setFilter(TraceRecorder::routerFilter(5));
    attach(net, recorder);
    net.run(200);
    ASSERT_FALSE(recorder.events().empty());
    for (const TraceEvent &event : recorder.events())
        EXPECT_EQ(event.router, 5);
}

TEST(Trace, PacketFilterFollowsOnePacket)
{
    Network net(mesh(), traffic());
    TraceRecorder probe;
    attach(net, probe);
    net.run(100);
    PacketId packet = kInvalidPacket;
    for (const TraceEvent &event : probe.events())
        if (event.kind == TraceKind::Inject)
            packet = event.flit.packet;
    ASSERT_NE(packet, kInvalidPacket);

    Network net2(mesh(), traffic());
    TraceRecorder recorder;
    recorder.setFilter(TraceRecorder::packetFilter(packet));
    attach(net2, recorder);
    net2.run(200);
    ASSERT_FALSE(recorder.events().empty());
    for (const TraceEvent &event : recorder.events())
        EXPECT_EQ(event.flit.packet, packet);
}

TEST(Trace, WindowFilterBoundsCycles)
{
    Network net(mesh(), traffic());
    TraceRecorder recorder;
    recorder.setFilter(TraceRecorder::windowFilter(50, 60));
    attach(net, recorder);
    net.run(200);
    for (const TraceEvent &event : recorder.events()) {
        EXPECT_GE(event.cycle, 50);
        EXPECT_LE(event.cycle, 60);
    }
}

TEST(Trace, LimitBoundsMemory)
{
    Network net(mesh(), traffic(0.2));
    TraceRecorder recorder;
    recorder.setLimit(100);
    attach(net, recorder);
    net.run(500);
    EXPECT_EQ(recorder.events().size(), 100u);
    // The kept events are the most recent ones.
    EXPECT_GT(recorder.events().front().cycle, 100);
}

TEST(Trace, DumpOneLinePerEvent)
{
    Network net(mesh(), traffic());
    TraceRecorder recorder;
    recorder.setLimit(10);
    attach(net, recorder);
    net.run(100);
    const std::string dump = recorder.dump();
    std::size_t lines = 0;
    for (char ch : dump)
        lines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(lines, recorder.events().size());
    recorder.clear();
    EXPECT_TRUE(recorder.events().empty());
}

} // namespace
} // namespace nocalert::noc
