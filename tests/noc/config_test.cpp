#include "noc/config.hpp"

#include <gtest/gtest.h>

#include "noc/types.hpp"

namespace nocalert::noc {
namespace {

TEST(Types, PortNamesAndIndices)
{
    EXPECT_STREQ(portName(portIndex(Port::North)), "N");
    EXPECT_STREQ(portName(portIndex(Port::Local)), "L");
    EXPECT_STREQ(portName(7), "?");
    EXPECT_EQ(portFromIndex(1), Port::East);
}

TEST(Types, OppositePorts)
{
    EXPECT_EQ(oppositePort(portIndex(Port::North)),
              portIndex(Port::South));
    EXPECT_EQ(oppositePort(portIndex(Port::East)),
              portIndex(Port::West));
    EXPECT_EQ(oppositePort(portIndex(Port::West)),
              portIndex(Port::East));
    EXPECT_EQ(oppositePort(portIndex(Port::South)),
              portIndex(Port::North));
}

TEST(Types, PortAxes)
{
    EXPECT_EQ(portAxis(portIndex(Port::North)), Axis::Y);
    EXPECT_EQ(portAxis(portIndex(Port::South)), Axis::Y);
    EXPECT_EQ(portAxis(portIndex(Port::East)), Axis::X);
    EXPECT_EQ(portAxis(portIndex(Port::West)), Axis::X);
    EXPECT_EQ(portAxis(portIndex(Port::Local)), Axis::None);
    EXPECT_EQ(portAxis(-1), Axis::None);
}

TEST(Types, MeshPortPredicate)
{
    EXPECT_TRUE(isMeshPort(0));
    EXPECT_TRUE(isMeshPort(3));
    EXPECT_FALSE(isMeshPort(4)); // Local
    EXPECT_FALSE(isMeshPort(-1));
}

TEST(Config, CoordinateRoundTrip)
{
    NetworkConfig config;
    config.width = 5;
    config.height = 3;
    for (NodeId n = 0; n < config.numNodes(); ++n)
        EXPECT_EQ(config.nodeAt(config.coordOf(n)), n);
    EXPECT_EQ(config.coordOf(0), (Coord{0, 0}));
    EXPECT_EQ(config.coordOf(7), (Coord{2, 1}));
    EXPECT_EQ(toString(Coord{2, 1}), "(2,1)");
}

TEST(Config, Neighbors)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    const NodeId center = config.nodeAt({1, 1});
    EXPECT_EQ(config.neighborOf(center, portIndex(Port::North)),
              config.nodeAt({1, 2}));
    EXPECT_EQ(config.neighborOf(center, portIndex(Port::South)),
              config.nodeAt({1, 0}));
    EXPECT_EQ(config.neighborOf(center, portIndex(Port::East)),
              config.nodeAt({2, 1}));
    EXPECT_EQ(config.neighborOf(center, portIndex(Port::West)),
              config.nodeAt({0, 1}));
    EXPECT_EQ(config.neighborOf(center, portIndex(Port::Local)),
              kInvalidNode);
    // Edges fall off the mesh.
    EXPECT_EQ(config.neighborOf(0, portIndex(Port::West)),
              kInvalidNode);
    EXPECT_EQ(config.neighborOf(0, portIndex(Port::South)),
              kInvalidNode);
}

TEST(Config, PortConnectivity)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    // Corner (0,0): only North, East, Local.
    EXPECT_TRUE(config.portConnected(0, portIndex(Port::North)));
    EXPECT_TRUE(config.portConnected(0, portIndex(Port::East)));
    EXPECT_FALSE(config.portConnected(0, portIndex(Port::South)));
    EXPECT_FALSE(config.portConnected(0, portIndex(Port::West)));
    EXPECT_TRUE(config.portConnected(0, portIndex(Port::Local)));
    // Center: everything.
    const NodeId center = config.nodeAt({2, 2});
    for (int p = 0; p < kNumPorts; ++p)
        EXPECT_TRUE(config.portConnected(center, p));
}

TEST(Config, HopDistance)
{
    NetworkConfig config;
    config.width = 8;
    config.height = 8;
    EXPECT_EQ(config.hopDistance(0, 0), 0);
    EXPECT_EQ(config.hopDistance(config.nodeAt({0, 0}),
                                 config.nodeAt({7, 7})),
              14);
    EXPECT_EQ(config.hopDistance(config.nodeAt({3, 2}),
                                 config.nodeAt({1, 5})),
              5);
}

TEST(Config, VcClassPartition)
{
    RouterParams params; // 4 VCs, 2 classes
    EXPECT_EQ(params.vcClass(0), 0u);
    EXPECT_EQ(params.vcClass(1), 0u);
    EXPECT_EQ(params.vcClass(2), 1u);
    EXPECT_EQ(params.vcClass(3), 1u);
    EXPECT_EQ(params.classVcs(0), (std::vector<unsigned>{0, 1}));
    EXPECT_EQ(params.classVcs(1), (std::vector<unsigned>{2, 3}));
    EXPECT_EQ(params.classLength(0), 1);
    EXPECT_EQ(params.classLength(1), 5);
}

TEST(Config, UnevenVcClassPartition)
{
    RouterParams params;
    params.numVcs = 3;
    EXPECT_EQ(params.vcClass(0), 0u);
    EXPECT_EQ(params.vcClass(1), 0u);
    EXPECT_EQ(params.vcClass(2), 1u);
    // Every class owns at least one VC.
    EXPECT_FALSE(params.classVcs(0).empty());
    EXPECT_FALSE(params.classVcs(1).empty());
}

TEST(Config, ValidationRejectsBadParameters)
{
    NetworkConfig config;
    config.width = 1;
    EXPECT_EXIT(config.validate(), testing::ExitedWithCode(1),
                "at least 2x2");

    NetworkConfig vcs;
    vcs.router.numVcs = 9;
    EXPECT_EXIT(vcs.validate(), testing::ExitedWithCode(1), "numVcs");

    NetworkConfig depth;
    depth.router.bufferDepth = 0;
    EXPECT_EXIT(depth.validate(), testing::ExitedWithCode(1),
                "bufferDepth");

    NetworkConfig classes;
    classes.router.classes = {};
    EXPECT_EXIT(classes.validate(), testing::ExitedWithCode(1),
                "message class");

    NetworkConfig longpkt;
    longpkt.router.classes = {{"data", 9}}; // exceeds depth 5
    EXPECT_EXIT(longpkt.validate(), testing::ExitedWithCode(1),
                "exceed");

    NetworkConfig toomany;
    toomany.router.numVcs = 1;
    EXPECT_EXIT(toomany.validate(), testing::ExitedWithCode(1),
                "more message classes");
}

TEST(Config, RoutingAlgoNames)
{
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::XY), "XY");
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::O1Turn), "O1Turn");
}

} // namespace
} // namespace nocalert::noc
