#include "noc/arbiter.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"

namespace nocalert::noc {
namespace {

TEST(RoundRobin, NoRequestNoGrant)
{
    EXPECT_EQ(RoundRobinArbiter::compute(0, 0, 4), 0u);
}

TEST(RoundRobin, SingleRequestWins)
{
    for (unsigned v = 0; v < 4; ++v)
        EXPECT_EQ(RoundRobinArbiter::compute(1ULL << v, 0, 4),
                  1ULL << v);
}

TEST(RoundRobin, PointerSelectsFirstAtOrAfter)
{
    // Requests from clients 1 and 3.
    const std::uint64_t req = 0b1010;
    EXPECT_EQ(RoundRobinArbiter::compute(req, 0, 4), 0b0010u);
    EXPECT_EQ(RoundRobinArbiter::compute(req, 1, 4), 0b0010u);
    EXPECT_EQ(RoundRobinArbiter::compute(req, 2, 4), 0b1000u);
    EXPECT_EQ(RoundRobinArbiter::compute(req, 3, 4), 0b1000u);
}

TEST(RoundRobin, CorruptedPointerWraps)
{
    // A pointer beyond the client count behaves like pointer % n.
    EXPECT_EQ(RoundRobinArbiter::compute(0b0001, 17, 4), 0b0001u);
}

TEST(RoundRobin, GrantAlwaysOneHotAndRequested)
{
    for (std::uint64_t req = 1; req < 32; ++req) {
        for (unsigned ptr = 0; ptr < 5; ++ptr) {
            const std::uint64_t grant =
                RoundRobinArbiter::compute(req, ptr, 5);
            EXPECT_TRUE(isOneHot(grant));
            EXPECT_EQ(grant & ~req, 0u);
        }
    }
}

TEST(RoundRobin, CommitAdvancesPastWinner)
{
    RoundRobinArbiter arb(4);
    EXPECT_EQ(arb.pointer(), 0u);
    arb.commit(0b0100); // winner 2
    EXPECT_EQ(arb.pointer(), 3u);
    arb.commit(0b1000); // winner 3 -> wraps
    EXPECT_EQ(arb.pointer(), 0u);
}

TEST(RoundRobin, CommitIgnoresNonOneHot)
{
    RoundRobinArbiter arb(4);
    arb.setPointer(2);
    arb.commit(0);
    EXPECT_EQ(arb.pointer(), 2u);
    arb.commit(0b0110);
    EXPECT_EQ(arb.pointer(), 2u);
}

TEST(RoundRobin, FairnessOverWindow)
{
    // All four clients always request: each must win exactly 25%.
    RoundRobinArbiter arb(4);
    int wins[4] = {0, 0, 0, 0};
    for (int i = 0; i < 400; ++i) {
        const std::uint64_t grant =
            RoundRobinArbiter::compute(0b1111, arb.pointer(), 4);
        ++wins[lowestSetBit(grant)];
        arb.commit(grant);
    }
    for (int w : wins)
        EXPECT_EQ(w, 100);
}

TEST(RoundRobin, SixtyFourClients)
{
    RoundRobinArbiter arb(64);
    const std::uint64_t req = (1ULL << 63) | 1;
    EXPECT_EQ(RoundRobinArbiter::compute(req, 1, 64), 1ULL << 63);
    EXPECT_EQ(RoundRobinArbiter::compute(req, 0, 64), 1ULL);
}

TEST(Matrix, SingleRequestWins)
{
    MatrixArbiter arb(4);
    EXPECT_EQ(arb.arbitrate(0b0100), 0b0100u);
    EXPECT_EQ(arb.arbitrate(0), 0u);
}

TEST(Matrix, LeastRecentlyGrantedWins)
{
    MatrixArbiter arb(3);
    EXPECT_EQ(arb.arbitrate(0b111), 0b001u); // initial order: 0 first
    EXPECT_EQ(arb.arbitrate(0b111), 0b010u); // 0 dropped priority
    EXPECT_EQ(arb.arbitrate(0b111), 0b100u);
    EXPECT_EQ(arb.arbitrate(0b111), 0b001u); // full rotation
}

TEST(Matrix, FairnessOverWindow)
{
    MatrixArbiter arb(5);
    int wins[5] = {};
    for (int i = 0; i < 500; ++i)
        ++wins[lowestSetBit(arb.arbitrate(0b11111))];
    for (int w : wins)
        EXPECT_EQ(w, 100);
}

TEST(Matrix, PriorityQueryConsistent)
{
    MatrixArbiter arb(3);
    // Initially 0 beats 1 and 2.
    EXPECT_TRUE(arb.hasPriority(0, 1));
    EXPECT_TRUE(arb.hasPriority(0, 2));
    arb.arbitrate(0b001);
    EXPECT_FALSE(arb.hasPriority(0, 1));
    EXPECT_TRUE(arb.hasPriority(1, 0));
}

} // namespace
} // namespace nocalert::noc
