#include "noc/router.hpp"

#include <gtest/gtest.h>

#include "util/bits.hpp"

namespace nocalert::noc {
namespace {

constexpr int kE = portIndex(Port::East);
constexpr int kL = portIndex(Port::Local);
constexpr int kW = portIndex(Port::West);

/** Drives one router in isolation with manual link I/O. */
class RouterHarness
{
  public:
    explicit RouterHarness(NetworkConfig config = {}, NodeId node = 5)
        : config_(std::move(config)),
          routing_(makeRouting(config_.routing)),
          router_(config_, node)
    {
    }

    /** Present a flit on input @p port next cycle. */
    void
    inject(int port, const Flit &flit)
    {
        pending_valid_[port] = true;
        pending_flit_[port] = flit;
    }

    /** Return credits on output @p port next cycle. */
    void
    credit(int port, std::uint32_t mask)
    {
        pending_credit_[port] |= mask;
    }

    Router::LinkIo &
    step()
    {
        io_ = Router::LinkIo{};
        io_.inValid = pending_valid_;
        io_.inFlit = pending_flit_;
        io_.creditIn = pending_credit_;
        pending_valid_ = {};
        pending_credit_ = {};
        Router::Context ctx{&config_, routing_.get()};
        router_.evaluate(ctx, cycle_++, io_, nullptr);
        return io_;
    }

    Router &router() { return router_; }
    Cycle cycle() const { return cycle_; }
    const NetworkConfig &config() const { return config_; }

  private:
    NetworkConfig config_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    Router router_;
    Cycle cycle_ = 0;
    Router::LinkIo io_;
    std::array<bool, kNumPorts> pending_valid_ = {};
    std::array<Flit, kNumPorts> pending_flit_ = {};
    std::array<std::uint32_t, kNumPorts> pending_credit_ = {};
};

Packet
packetTo(NodeId src, NodeId dst, std::uint8_t cls, PacketId id = 1)
{
    Packet pkt;
    pkt.id = id;
    pkt.src = src;
    pkt.dst = dst;
    pkt.msgClass = cls;
    pkt.length = cls == 0 ? 1 : 5;
    return pkt;
}

TEST(Router, FourCyclePipelineLatency)
{
    // Node 5 = (1,1) in a 4x4 mesh; dst (3,1) routes East under XY.
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    Flit flit = packetTo(5, 7, 0).makeFlit(0); // single-flit packet
    flit.vc = 0;
    h.inject(kL, flit);

    // Cycle 0: BW+RC. Cycle 1: VA. Cycle 2: SA. Cycle 3: ST + output.
    for (int c = 0; c < 3; ++c) {
        const auto &io = h.step();
        for (int p = 0; p < kNumPorts; ++p)
            ASSERT_FALSE(io.outValid[p]) << "cycle " << c;
    }
    const auto &io = h.step();
    ASSERT_TRUE(io.outValid[kE]);
    EXPECT_EQ(io.outFlit[kE].packet, 1u);
    EXPECT_TRUE(h.router().idle());
}

TEST(Router, SpeculativeSavesOneCycle)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.router.speculative = true;
    RouterHarness h(config, 5);

    Flit flit = packetTo(5, 7, 0).makeFlit(0);
    flit.vc = 0;
    h.inject(kL, flit);

    h.step(); // BW+RC
    h.step(); // VA+SA same cycle
    const auto &io = h.step(); // ST
    ASSERT_TRUE(io.outValid[kE]);
}

TEST(Router, WiresShowPipelineStages)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    Flit flit = packetTo(5, 7, 1).makeFlit(0); // 5-flit data packet
    flit.vc = 2;
    h.inject(kL, flit);

    h.step();
    const RouterWires &w0 = h.router().wires();
    EXPECT_TRUE(w0.in[kL].inValid);
    EXPECT_EQ(w0.in[kL].writeEnable, 1u << 2);
    EXPECT_EQ(w0.in[kL].rcDone, 1u << 2);
    EXPECT_EQ(w0.in[kL].rcOutPort, kE);
    EXPECT_EQ(h.router().vcRecord(kL, 2).state, VcState::VcAllocWait);

    h.step();
    const RouterWires &w1 = h.router().wires();
    bool va_granted = false;
    for (unsigned v = 0; v < config.router.numVcs; ++v)
        va_granted |= w1.out[kE].va2Grant[v] != 0;
    EXPECT_TRUE(va_granted);
    EXPECT_EQ(h.router().vcRecord(kL, 2).state, VcState::Active);
    const int out_vc = h.router().vcRecord(kL, 2).outVc;
    EXPECT_EQ(config.router.vcClass(static_cast<unsigned>(out_vc)), 1u);

    h.step();
    const RouterWires &w2 = h.router().wires();
    EXPECT_EQ(w2.in[kL].sa1Grant, 1u << 2);
    EXPECT_EQ(w2.out[kE].sa2Grant, 1u << kL);

    h.step();
    const RouterWires &w3 = h.router().wires();
    EXPECT_EQ(w3.in[kL].readEnable, 1u << 2);
    EXPECT_EQ(w3.xbarRow[kL], 1u << kE);
    EXPECT_TRUE(w3.out[kE].outValid);
}

TEST(Router, WormholeStreamsBackToBack)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    Packet pkt = packetTo(5, 7, 1);
    std::vector<Flit> out;
    auto collect = [&](const Router::LinkIo &io) {
        if (io.outValid[kE])
            out.push_back(io.outFlit[kE]);
    };
    for (std::uint16_t i = 0; i < 5; ++i) {
        Flit f = pkt.makeFlit(i);
        f.vc = 2;
        h.inject(kL, f);
        collect(h.step());
    }
    for (int c = 0; c < 8; ++c)
        collect(h.step());
    ASSERT_EQ(out.size(), 5u);
    for (std::uint16_t i = 0; i < 5; ++i) {
        EXPECT_EQ(out[i].seq, i);
        EXPECT_EQ(out[i].vc, out[0].vc); // rewritten to the output VC
    }
    EXPECT_TRUE(h.router().idle());
    // Tail passage released the output VC.
    const int used_vc = out[0].vc;
    EXPECT_TRUE(h.router().outVcState(kE, used_vc).free);
}

TEST(Router, CreditStallsWithoutReturnAndResumesWithIt)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.router.classes = {{"data", 5}};
    config.router.numVcs = 1; // single VC -> easy credit accounting
    RouterHarness h(config, 5);

    // Two back-to-back 5-flit packets toward East with depth-5 buffers:
    // without credit returns only the first 5 flits may ever leave.
    int sent = 0;
    for (PacketId id = 1; id <= 2; ++id) {
        Packet pkt = packetTo(5, 7, 0, id);
        pkt.length = 5;
        for (std::uint16_t i = 0; i < 5; ++i) {
            Flit f = pkt.makeFlit(i);
            f.vc = 0;
            h.inject(kL, f);
            sent += h.step().outValid[kE] ? 1 : 0;
        }
    }
    for (int c = 0; c < 20; ++c)
        sent += h.step().outValid[kE] ? 1 : 0;
    EXPECT_EQ(sent, 5); // exactly the downstream buffer depth
    EXPECT_FALSE(h.router().idle());
    // Returning credits lets the rest move.
    for (int c = 0; c < 30; ++c) {
        h.credit(kE, 0b1);
        sent += h.step().outValid[kE] ? 1 : 0;
    }
    EXPECT_EQ(sent, 10);
    EXPECT_TRUE(h.router().idle());
}

TEST(Router, EjectsAtLocalPort)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    Flit f = packetTo(1, 5, 0).makeFlit(0); // destined to this node
    f.vc = 0;
    h.inject(kW, f); // arrives from the west neighbor
    h.step();
    h.step();
    h.step();
    const auto &io = h.step();
    ASSERT_TRUE(io.outValid[kL]);
    EXPECT_TRUE(h.router().wires().ejectValid);
    EXPECT_EQ(h.router().wires().ejectFlit.packet, 1u);
}

TEST(Router, CreditReturnedUpstreamOnRead)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    Flit f = packetTo(1, 5, 0).makeFlit(0);
    f.vc = 3;
    h.inject(kW, f);
    h.step();
    h.step();
    h.step();
    const auto &io = h.step(); // ST reads the buffer this cycle
    EXPECT_EQ(io.creditOut[kW], 1u << 3);
}

TEST(Router, TwoInputsContendForOneOutput)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    // Both a local packet and a west-arriving packet want East.
    Flit a = packetTo(5, 7, 0, 1).makeFlit(0);
    a.vc = 0;
    Flit b = packetTo(4, 7, 0, 2).makeFlit(0);
    b.vc = 0;
    h.inject(kL, a);
    h.inject(kW, b);

    std::vector<PacketId> order;
    for (int c = 0; c < 10; ++c) {
        const auto &io = h.step();
        if (io.outValid[kE])
            order.push_back(io.outFlit[kE].packet);
    }
    // Both must get through, one cycle apart, no duplication.
    ASSERT_EQ(order.size(), 2u);
    EXPECT_NE(order[0], order[1]);
    EXPECT_TRUE(h.router().idle());
}

TEST(Router, AtomicVcNotReusedUntilDrained)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    RouterHarness h(config, 5);

    // Occupy east output VC 0 (ctrl class) with a packet, never
    // returning credits: the VC must stay unusable for a second
    // packet on the same class partition until credits return.
    Flit a = packetTo(5, 7, 0, 1).makeFlit(0);
    a.vc = 0;
    h.inject(kL, a);
    for (int c = 0; c < 4; ++c)
        h.step();

    // VC 0's wormhole closed (HeadTail), but downstream still holds
    // the flit (no credit returned). Class 0 owns VCs 0 and 1.
    Flit b = packetTo(5, 7, 0, 2).makeFlit(0);
    b.vc = 1;
    h.inject(kL, b);
    for (int c = 0; c < 6; ++c)
        h.step();
    // Packet 2 must have used the *other* class-0 output VC.
    const OutVcState &vc0 = h.router().outVcState(kE, 0);
    const OutVcState &vc1 = h.router().outVcState(kE, 1);
    EXPECT_LT(vc0.credits + vc1.credits, 2 * config.router.bufferDepth);
    EXPECT_TRUE(h.router().idle());
}

TEST(Router, InputFlitToOutOfRangeVcIsDropped)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.router.numVcs = 3; // vc id field is 2 bits; value 3 invalid
    config.router.classes = {{"ctrl", 1}, {"data", 3}};
    RouterHarness h(config, 5);

    Flit f = packetTo(5, 7, 0).makeFlit(0);
    f.vc = 3;
    h.inject(kL, f);
    h.step();
    EXPECT_EQ(h.router().wires().in[kL].writeEnable, 0u);
    EXPECT_TRUE(h.router().idle());
}

} // namespace
} // namespace nocalert::noc
