#include "noc/crossbar.hpp"

#include <gtest/gtest.h>

namespace nocalert::noc {
namespace {

Flit
tagged(PacketId pkt)
{
    Flit f;
    f.packet = pkt;
    return f;
}

TEST(Crossbar, IdleTransfersNothing)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, 0);
    EXPECT_EQ(result.flitsOut, 0);
    for (int o = 0; o < kNumPorts; ++o) {
        EXPECT_FALSE(result.output[o].has_value());
        EXPECT_EQ(result.col[o], 0u);
    }
}

TEST(Crossbar, SimpleSteering)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    in[0] = tagged(10);
    rows[0] = 1u << 3;
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, 1);
    EXPECT_EQ(result.flitsOut, 1);
    ASSERT_TRUE(result.output[3].has_value());
    EXPECT_EQ(result.output[3]->packet, 10u);
    EXPECT_EQ(result.col[3], 1u);
}

TEST(Crossbar, FullPermutation)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    for (int p = 0; p < kNumPorts; ++p) {
        in[p] = tagged(static_cast<PacketId>(p));
        rows[p] = 1u << ((p + 1) % kNumPorts);
    }
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, kNumPorts);
    EXPECT_EQ(result.flitsOut, kNumPorts);
    for (int p = 0; p < kNumPorts; ++p) {
        ASSERT_TRUE(result.output[(p + 1) % kNumPorts].has_value());
        EXPECT_EQ(result.output[(p + 1) % kNumPorts]->packet,
                  static_cast<PacketId>(p));
    }
}

TEST(Crossbar, CollisionLowestInputWins)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    in[1] = tagged(11);
    in[3] = tagged(33);
    rows[1] = 1u << 2;
    rows[3] = 1u << 2;
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, 2);
    EXPECT_EQ(result.flitsOut, 1); // one flit lost in the collision
    ASSERT_TRUE(result.output[2].has_value());
    EXPECT_EQ(result.output[2]->packet, 11u);
    EXPECT_EQ(result.col[2], (1u << 1) | (1u << 3));
}

TEST(Crossbar, MultiHotRowDuplicates)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    in[0] = tagged(7);
    rows[0] = (1u << 1) | (1u << 4); // unwanted multicast
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, 1);
    EXPECT_EQ(result.flitsOut, 2);
    EXPECT_TRUE(result.output[1].has_value());
    EXPECT_TRUE(result.output[4].has_value());
}

TEST(Crossbar, SelectWithoutFlitDrivesNothing)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    rows[2] = 1u << 0; // row selected but no flit presented
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, 0);
    EXPECT_EQ(result.flitsOut, 0);
    EXPECT_FALSE(result.output[0].has_value());
    EXPECT_EQ(result.col[0], 1u << 2); // the select is still visible
}

TEST(Crossbar, ZeroRowLosesFlit)
{
    std::array<std::optional<Flit>, kNumPorts> in;
    std::array<std::uint32_t, kNumPorts> rows = {};
    in[0] = tagged(5);
    const auto result = Crossbar::transfer(in, rows);
    EXPECT_EQ(result.flitsIn, 1);
    EXPECT_EQ(result.flitsOut, 0); // conservation violated: checker 16
}

} // namespace
} // namespace nocalert::noc
