/**
 * @file
 * End-to-end retransmission layer: in a fault-free network the
 * protocol must be invisible (identical delivered payload, zero
 * retransmissions), and after a recovery purge the sources must
 * re-deliver every lost packet exactly once.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "noc/network.hpp"

namespace nocalert::noc {
namespace {

NetworkConfig
meshConfig(bool retransmit)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    if (retransmit) {
        config.retransmit.enabled = true;
        config.routing = RoutingAlgo::QAdaptive;
    }
    return config;
}

TrafficSpec
trafficSpec()
{
    TrafficSpec traffic;
    traffic.injectionRate = 0.05;
    traffic.seed = 21;
    traffic.stopCycle = 400;
    return traffic;
}

/** Delivered payload as a (packet, seq, node) multiset: what arrived,
 *  independent of when. */
std::map<std::tuple<PacketId, std::uint16_t, NodeId>, unsigned>
deliveredPayload(const Network &net)
{
    std::map<std::tuple<PacketId, std::uint16_t, NodeId>, unsigned> counts;
    for (const EjectionRecord &rec : net.collectEjections())
        ++counts[{rec.flit.packet, rec.flit.seq, rec.node}];
    return counts;
}

std::uint64_t
totalRetransmits(const Network &net)
{
    std::uint64_t total = 0;
    for (NodeId node = 0; node < net.config().numNodes(); ++node)
        total += net.ni(node).retransmits();
    return total;
}

TEST(Retransmit, ProtocolInvisibleOnFaultFreeNetwork)
{
    Network plain(meshConfig(false), trafficSpec());
    plain.run(400);
    ASSERT_TRUE(plain.drain(4000));

    Network reliable(meshConfig(true), trafficSpec());
    reliable.run(400);
    ASSERT_TRUE(reliable.drain(12000));

    // Same payload delivered: ACK packets never reach the ejection
    // log, and no data packet is delivered twice.
    EXPECT_EQ(deliveredPayload(reliable), deliveredPayload(plain));

    // Nothing timed out, nothing duplicated, nothing abandoned; every
    // pending-ACK entry closed, so every NI drained to idle.
    std::uint64_t acks = 0;
    for (NodeId node = 0; node < reliable.config().numNodes(); ++node) {
        const NetworkInterface &ni = reliable.ni(node);
        EXPECT_EQ(ni.retransmits(), 0u);
        EXPECT_EQ(ni.duplicatesSuppressed(), 0u);
        EXPECT_EQ(ni.packetsAbandoned(), 0u);
        EXPECT_EQ(ni.pendingAcks(), 0u);
        EXPECT_TRUE(ni.idle());
        acks += ni.acksSent();
    }
    // Every delivered packet was acknowledged.
    EXPECT_EQ(acks, reliable.stats().packetsEjected);
}

TEST(Retransmit, PurgedPacketsAreRedelivered)
{
    // Reference: the same traffic, undisturbed.
    Network clean(meshConfig(true), trafficSpec());
    clean.run(400);
    ASSERT_TRUE(clean.drain(12000));
    const auto expected = deliveredPayload(clean);

    // Same network, but mid-run every in-flight packet near one
    // router is purged — the recovery orchestrator's action, driven
    // here by hand.
    Network net(meshConfig(true), trafficSpec());
    net.run(250);
    std::unordered_set<PacketId> suspects;
    while (suspects.empty() && net.cycle() < 400) {
        net.step();
        for (NodeId r = 0; r < net.config().numNodes(); ++r) {
            suspects = net.implicatedPackets(r, -1);
            if (!suspects.empty())
                break;
        }
    }
    ASSERT_FALSE(suspects.empty());
    EXPECT_GT(net.purgePackets(suspects), 0u);

    if (net.cycle() < 400)
        net.run(400 - net.cycle());
    ASSERT_TRUE(net.drain(12000));

    // The sources noticed the missing ACKs and re-delivered: the
    // payload matches the undisturbed run exactly.
    EXPECT_EQ(deliveredPayload(net), expected);
    EXPECT_GT(totalRetransmits(net), 0u);
    for (NodeId node = 0; node < net.config().numNodes(); ++node) {
        EXPECT_EQ(net.ni(node).packetsAbandoned(), 0u);
        EXPECT_EQ(net.ni(node).pendingAcks(), 0u);
    }
}

} // namespace
} // namespace nocalert::noc
