#include "noc/traffic.hpp"

#include <gtest/gtest.h>

#include <map>

namespace nocalert::noc {
namespace {

NetworkConfig
mesh(int w = 4, int h = 4)
{
    NetworkConfig config;
    config.width = w;
    config.height = h;
    return config;
}

TEST(Traffic, Deterministic)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 0.3;
    spec.seed = 99;
    TrafficGenerator a(cfg, spec);
    TrafficGenerator b(cfg, spec);
    for (Cycle c = 0; c < 200; ++c) {
        for (NodeId n = 0; n < cfg.numNodes(); ++n) {
            const auto pa = a.generate(cfg, n, c);
            const auto pb = b.generate(cfg, n, c);
            ASSERT_EQ(pa.has_value(), pb.has_value());
            if (pa) {
                EXPECT_EQ(pa->id, pb->id);
                EXPECT_EQ(pa->dst, pb->dst);
                EXPECT_EQ(pa->msgClass, pb->msgClass);
            }
        }
    }
}

TEST(Traffic, CopyPreservesStream)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 0.5;
    TrafficGenerator a(cfg, spec);
    for (Cycle c = 0; c < 50; ++c)
        for (NodeId n = 0; n < cfg.numNodes(); ++n)
            (void)a.generate(cfg, n, c);
    TrafficGenerator b = a;
    for (Cycle c = 50; c < 100; ++c) {
        for (NodeId n = 0; n < cfg.numNodes(); ++n) {
            const auto pa = a.generate(cfg, n, c);
            const auto pb = b.generate(cfg, n, c);
            ASSERT_EQ(pa.has_value(), pb.has_value());
            if (pa) {
                EXPECT_EQ(pa->id, pb->id);
            }
        }
    }
}

TEST(Traffic, RateIsRespected)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 0.1;
    TrafficGenerator gen(cfg, spec);
    std::uint64_t fired = 0;
    const Cycle cycles = 2000;
    for (Cycle c = 0; c < cycles; ++c)
        for (NodeId n = 0; n < cfg.numNodes(); ++n)
            fired += gen.generate(cfg, n, c).has_value() ? 1 : 0;
    const double rate = static_cast<double>(fired) /
                        (static_cast<double>(cycles) * cfg.numNodes());
    EXPECT_NEAR(rate, 0.1, 0.01);
    EXPECT_EQ(gen.packetsCreated(), fired);
}

TEST(Traffic, StopCycleHonored)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 1.0;
    spec.stopCycle = 10;
    TrafficGenerator gen(cfg, spec);
    EXPECT_TRUE(gen.generate(cfg, 0, 9).has_value());
    EXPECT_FALSE(gen.generate(cfg, 0, 10).has_value());
    EXPECT_FALSE(gen.generate(cfg, 0, 1000).has_value());
}

TEST(Traffic, UniformNeverSelfDirected)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    for (Cycle c = 0; c < 100; ++c) {
        for (NodeId n = 0; n < cfg.numNodes(); ++n) {
            const auto pkt = gen.generate(cfg, n, c);
            ASSERT_TRUE(pkt.has_value());
            EXPECT_NE(pkt->dst, n);
            EXPECT_EQ(pkt->src, n);
        }
    }
}

TEST(Traffic, UniformCoversDestinations)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    std::map<NodeId, int> seen;
    for (Cycle c = 0; c < 500; ++c)
        if (auto pkt = gen.generate(cfg, 0, c))
            ++seen[pkt->dst];
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(cfg.numNodes() - 1));
}

TEST(Traffic, TransposePattern)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Transpose;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    const NodeId src = cfg.nodeAt({3, 1});
    const auto pkt = gen.generate(cfg, src, 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->dst, cfg.nodeAt({1, 3}));
    // Diagonal nodes send to themselves -> no packet.
    EXPECT_FALSE(gen.generate(cfg, cfg.nodeAt({2, 2}), 0).has_value());
}

TEST(Traffic, BitComplementPattern)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.pattern = TrafficPattern::BitComplement;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    const auto pkt = gen.generate(cfg, cfg.nodeAt({0, 0}), 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->dst, cfg.nodeAt({3, 3}));
}

TEST(Traffic, TornadoPattern)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Tornado;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    const auto pkt = gen.generate(cfg, cfg.nodeAt({1, 2}), 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->dst, cfg.nodeAt({3, 2}));
}

TEST(Traffic, ShufflePattern)
{
    const auto cfg = mesh(); // 16 nodes, 4 bits
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Shuffle;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    // Node 3 = 0b0011 -> rotate-left -> 0b0110 = 6.
    const auto pkt = gen.generate(cfg, 3, 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->dst, 6);
    // Node 9 = 0b1001 -> 0b0011 = 3.
    const auto pkt2 = gen.generate(cfg, 9, 0);
    ASSERT_TRUE(pkt2.has_value());
    EXPECT_EQ(pkt2->dst, 3);
    // Fixed points (0, 15) send to themselves -> no packet.
    EXPECT_FALSE(gen.generate(cfg, 0, 0).has_value());
    EXPECT_FALSE(gen.generate(cfg, 15, 0).has_value());
}

TEST(Traffic, BitReversePattern)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.pattern = TrafficPattern::BitReverse;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    // Node 1 = 0b0001 -> 0b1000 = 8.
    const auto pkt = gen.generate(cfg, 1, 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->dst, 8);
    // Palindromic ids are fixed points.
    EXPECT_FALSE(gen.generate(cfg, 0b1001, 0).has_value());
}

TEST(Traffic, NeighborPattern)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Neighbor;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    const auto pkt = gen.generate(cfg, cfg.nodeAt({1, 2}), 0);
    ASSERT_TRUE(pkt.has_value());
    EXPECT_EQ(pkt->dst, cfg.nodeAt({2, 2}));
    // Row wrap-around.
    const auto wrap = gen.generate(cfg, cfg.nodeAt({3, 0}), 0);
    ASSERT_TRUE(wrap.has_value());
    EXPECT_EQ(wrap->dst, cfg.nodeAt({0, 0}));
}

TEST(Traffic, HotspotBias)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.pattern = TrafficPattern::Hotspot;
    spec.injectionRate = 1.0;
    spec.hotspot.node = 5;
    spec.hotspot.fraction = 0.5;
    TrafficGenerator gen(cfg, spec);
    int to_hotspot = 0;
    int total = 0;
    for (Cycle c = 0; c < 1000; ++c) {
        if (auto pkt = gen.generate(cfg, 0, c)) {
            ++total;
            to_hotspot += pkt->dst == 5 ? 1 : 0;
        }
    }
    EXPECT_GT(static_cast<double>(to_hotspot) / total, 0.4);
}

TEST(Traffic, ClassWeights)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 1.0;
    spec.classWeights = {3.0, 1.0};
    TrafficGenerator gen(cfg, spec);
    int cls0 = 0;
    int total = 0;
    for (Cycle c = 0; c < 2000; ++c) {
        if (auto pkt = gen.generate(cfg, 1, c)) {
            ++total;
            cls0 += pkt->msgClass == 0 ? 1 : 0;
        }
    }
    EXPECT_NEAR(static_cast<double>(cls0) / total, 0.75, 0.05);
}

TEST(Traffic, PacketIdsUniqueAcrossNodes)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    std::map<PacketId, int> ids;
    for (Cycle c = 0; c < 100; ++c)
        for (NodeId n = 0; n < cfg.numNodes(); ++n)
            if (auto pkt = gen.generate(cfg, n, c))
                ++ids[pkt->id];
    for (const auto &[id, count] : ids)
        EXPECT_EQ(count, 1) << "duplicate packet id " << id;
}

TEST(Traffic, LengthMatchesClass)
{
    const auto cfg = mesh();
    TrafficSpec spec;
    spec.injectionRate = 1.0;
    TrafficGenerator gen(cfg, spec);
    for (Cycle c = 0; c < 200; ++c) {
        if (auto pkt = gen.generate(cfg, 2, c)) {
            EXPECT_EQ(pkt->length,
                      cfg.router.classLength(pkt->msgClass));
        }
    }
}

} // namespace
} // namespace nocalert::noc
