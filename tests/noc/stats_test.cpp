#include "noc/stats.hpp"

#include <gtest/gtest.h>

namespace nocalert::noc {
namespace {

TEST(Stats, EmptyStatsAreZero)
{
    NetworkStats stats;
    EXPECT_DOUBLE_EQ(stats.avgPacketLatency(), 0.0);
    EXPECT_DOUBLE_EQ(stats.throughput(64), 0.0);
}

TEST(Stats, AverageLatency)
{
    NetworkStats stats;
    stats.packetsEjected = 4;
    stats.latencySum = 100;
    EXPECT_DOUBLE_EQ(stats.avgPacketLatency(), 25.0);
}

TEST(Stats, Throughput)
{
    NetworkStats stats;
    stats.flitsEjected = 640;
    stats.cycles = 100;
    EXPECT_DOUBLE_EQ(stats.throughput(64), 0.1);
    EXPECT_DOUBLE_EQ(stats.throughput(0), 0.0);
}

TEST(Stats, SummaryMentionsKeyNumbers)
{
    NetworkStats stats;
    stats.cycles = 42;
    stats.packetsCreated = 7;
    stats.flitsInjected = 21;
    const std::string text = stats.summary();
    EXPECT_NE(text.find("cycles=42"), std::string::npos);
    EXPECT_NE(text.find("7/"), std::string::npos);
    EXPECT_NE(text.find("21/"), std::string::npos);
}

} // namespace
} // namespace nocalert::noc
