/**
 * @file
 * Wormhole-integrity integration tests: multi-packet interleavings,
 * non-atomic back-to-back occupancy, edge-router flows, and class
 * partitioning under contention.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/nocalert.hpp"
#include "noc/network.hpp"

namespace nocalert::noc {
namespace {

NetworkConfig
mesh(int w = 4, int h = 4)
{
    NetworkConfig config;
    config.width = w;
    config.height = h;
    return config;
}

/** Drive a network with a fixed set of packets, drain, return logs. */
std::vector<EjectionRecord>
deliverAll(Network &net, const std::vector<Packet> &packets)
{
    for (const Packet &pkt : packets)
        net.ni(pkt.src).enqueue(pkt);
    EXPECT_TRUE(net.drain(6000));
    return net.collectEjections();
}

Packet
makePacket(PacketId id, NodeId src, NodeId dst, std::uint8_t cls)
{
    Packet pkt;
    pkt.id = id;
    pkt.src = src;
    pkt.dst = dst;
    pkt.msgClass = cls;
    pkt.length = cls == 0 ? 1 : 5;
    return pkt;
}

TEST(Wormhole, ManyPacketsShareOnePath)
{
    TrafficSpec none;
    none.injectionRate = 0;
    Network net(mesh(), none);
    core::NoCAlertEngine engine(net);

    // Ten data packets from (0,0) to (3,0): all share the same row.
    std::vector<Packet> packets;
    for (PacketId id = 1; id <= 10; ++id)
        packets.push_back(makePacket(id, 0, 3, 1));
    const auto log = deliverAll(net, packets);

    EXPECT_EQ(log.size(), 50u);
    EXPECT_EQ(engine.log().count(), 0u);

    // Per-packet flit contiguity at the ejection interface: wormholes
    // never interleave within one VC, so each packet's five flits are
    // ejected on consecutive cycles.
    std::map<PacketId, std::vector<Cycle>> cycles;
    for (const EjectionRecord &rec : log)
        cycles[rec.flit.packet].push_back(rec.cycle);
    for (const auto &[id, times] : cycles) {
        ASSERT_EQ(times.size(), 5u);
        for (std::size_t i = 1; i < times.size(); ++i)
            EXPECT_EQ(times[i], times[i - 1] + 1) << "packet " << id;
    }
}

TEST(Wormhole, OppositeCornersCross)
{
    TrafficSpec none;
    none.injectionRate = 0;
    Network net(mesh(), none);
    core::NoCAlertEngine engine(net);

    const NodeId a = 0;
    const NodeId b = net.config().nodeAt({3, 3});
    std::vector<Packet> packets = {makePacket(1, a, b, 1),
                                   makePacket(2, b, a, 1),
                                   makePacket(3, a, b, 0),
                                   makePacket(4, b, a, 0)};
    const auto log = deliverAll(net, packets);
    EXPECT_EQ(log.size(), 12u);
    EXPECT_EQ(engine.log().count(), 0u);
}

TEST(Wormhole, ClassesDoNotBlockEachOther)
{
    TrafficSpec none;
    none.injectionRate = 0;
    Network net(mesh(), none);

    // Saturate the data class along a path, then send a ctrl packet:
    // the ctrl class's private VCs let it through.
    std::vector<Packet> packets;
    for (PacketId id = 1; id <= 6; ++id)
        packets.push_back(makePacket(id, 0, 3, 1));
    packets.push_back(makePacket(100, 0, 3, 0));

    for (const Packet &pkt : packets)
        net.ni(pkt.src).enqueue(pkt);

    Cycle ctrl_done = -1;
    Cycle last_data = -1;
    while (!net.quiescent() && net.cycle() < 4000) {
        net.step();
        for (const EjectionRecord &rec : net.ni(3).ejectionLog()) {
            if (rec.flit.packet == 100)
                ctrl_done = rec.cycle;
            else
                last_data = std::max(last_data, rec.cycle);
        }
    }
    ASSERT_GE(ctrl_done, 0);
    // The ctrl packet does not wait for all six data packets.
    EXPECT_LT(ctrl_done, last_data);
}

TEST(Wormhole, NonAtomicVcCarriesBackToBackPackets)
{
    NetworkConfig config = mesh();
    config.router.atomicBuffers = false;
    TrafficSpec none;
    none.injectionRate = 0;
    Network net(config, none);
    core::NoCAlertEngine engine(net);

    std::vector<Packet> packets;
    for (PacketId id = 1; id <= 8; ++id)
        packets.push_back(makePacket(id, 4, 7, 1));
    const auto log = deliverAll(net, packets);
    EXPECT_EQ(log.size(), 40u);
    EXPECT_EQ(engine.log().count(), 0u);

    // Order per packet intact.
    std::map<PacketId, std::uint16_t> next;
    for (const EjectionRecord &rec : log) {
        auto [it, fresh] = next.try_emplace(rec.flit.packet, 0);
        EXPECT_EQ(rec.flit.seq, it->second);
        ++it->second;
    }
}

TEST(Wormhole, EdgeAndCornerRoutersAreFullCitizens)
{
    TrafficSpec none;
    none.injectionRate = 0;
    Network net(mesh(), none);
    core::NoCAlertEngine engine(net);

    // Every corner sends to every other corner.
    const std::vector<NodeId> corners = {
        0, net.config().nodeAt({3, 0}), net.config().nodeAt({0, 3}),
        net.config().nodeAt({3, 3})};
    std::vector<Packet> packets;
    PacketId id = 1;
    for (NodeId src : corners)
        for (NodeId dst : corners)
            if (src != dst)
                packets.push_back(makePacket(id++, src, dst, 1));
    const auto log = deliverAll(net, packets);
    EXPECT_EQ(log.size(), 12u * 5u);
    EXPECT_EQ(engine.log().count(), 0u);
}

TEST(Wormhole, SelfAddressedPacketTurnsAroundLocally)
{
    TrafficSpec none;
    none.injectionRate = 0;
    Network net(mesh(), none);
    core::NoCAlertEngine engine(net);

    Packet pkt = makePacket(1, 5, 5, 1); // src == dst
    net.ni(5).enqueue(pkt);
    ASSERT_TRUE(net.drain(200));
    const auto log = net.collectEjections();
    ASSERT_EQ(log.size(), 5u);
    for (const EjectionRecord &rec : log)
        EXPECT_EQ(rec.node, 5);
    EXPECT_EQ(engine.log().count(), 0u);
}

} // namespace
} // namespace nocalert::noc
