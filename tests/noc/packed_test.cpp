/**
 * @file
 * Unit tests of the bitmask kernel's packed per-router state: the
 * PackedCycleEvents violation word, the quiescentPacked() predicate,
 * and recomputePacked()'s encode of the architectural VC status
 * table, crossbar schedule, and group-8 suspect screen.
 */

#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/packed.hpp"
#include "noc/router.hpp"
#include "util/bits.hpp"

namespace nocalert::noc {
namespace {

TEST(PackedCycleEvents, FireSetsMaskBitAndRecordsItem)
{
    PackedCycleEvents ev;
    ev.cycle = 42;
    ev.router = 7;

    ev.fire(PackedCheck::InvalidRcOutput, 3, -1);
    ev.fire(PackedCheck::EjectionAtWrongDestination, 4, 2);

    // Bit k-1 of the word stands for invariant k, mirroring the
    // checker bank's numbering (core/alert_matrix.hpp pins this).
    EXPECT_EQ(ev.mask,
              (1u << (static_cast<unsigned>(PackedCheck::InvalidRcOutput) -
                      1)) |
                  (1u << (static_cast<unsigned>(
                              PackedCheck::EjectionAtWrongDestination) -
                          1)));
    ASSERT_EQ(ev.count, 2u);
    EXPECT_EQ(ev.items[0].check, PackedCheck::InvalidRcOutput);
    EXPECT_EQ(ev.items[0].port, 3);
    EXPECT_EQ(ev.items[0].vc, -1);
    EXPECT_EQ(ev.items[1].check, PackedCheck::EjectionAtWrongDestination);
    EXPECT_EQ(ev.items[1].port, 4);
    EXPECT_EQ(ev.items[1].vc, 2);
}

TEST(PackedCycleEvents, FireBeyondCapacityKeepsMaskButDropsItems)
{
    PackedCycleEvents ev;
    for (unsigned i = 0; i < kMaxPackedViolations + 3; ++i)
        ev.fire(PackedCheck::RcOnEmptyVc, 0, 0);
    EXPECT_EQ(ev.count, kMaxPackedViolations);
    EXPECT_NE(ev.mask, 0u);
}

TEST(PackedRouterState, QuiescentPackedDefinition)
{
    PackedRouterState ps;
    ps.stale = false;
    EXPECT_TRUE(ps.quiescentPacked());

    ps.routeWait = 1;
    EXPECT_FALSE(ps.quiescentPacked());
    ps.routeWait = 0;

    ps.vcAllocWait = 1ull << 20;
    EXPECT_FALSE(ps.quiescentPacked());
    ps.vcAllocWait = 0;

    ps.active = 1ull << 39;
    EXPECT_FALSE(ps.quiescentPacked());
    ps.active = 0;

    ps.suspect = 1ull << 3;
    EXPECT_FALSE(ps.quiescentPacked());
    ps.suspect = 0;

    ps.schedPorts = 1u << 4;
    EXPECT_FALSE(ps.quiescentPacked());
    ps.schedPorts = 0;

    EXPECT_TRUE(ps.quiescentPacked());
}

/** Slot index of (port, vc) in the packed masks. */
unsigned
slot(const Router &router, int port, unsigned vc)
{
    return static_cast<unsigned>(port) * router.params().numVcs + vc;
}

TEST(RecomputePacked, EncodesVcStatesScheduleAndQuiescence)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    TrafficSpec traffic;
    traffic.injectionRate = 0.1;
    traffic.seed = 17;
    traffic.stopCycle = 400;

    Network net(config, traffic);
    std::uint64_t checked = 0;
    net.setCycleObserver([&](const Network &n) {
        for (NodeId node = 0; node < config.numNodes(); ++node) {
            const Router &router = n.router(node);
            PackedRouterState ps;
            router.recomputePacked(config, ps);
            ASSERT_FALSE(ps.stale);

            for (int p = 0; p < kNumPorts; ++p) {
                for (unsigned v = 0; v < config.router.numVcs; ++v) {
                    const VcRecord &rec = router.vcRecord(p, v);
                    const std::uint64_t bit = 1ull
                                              << slot(router, p, v);
                    EXPECT_EQ((ps.routeWait & bit) != 0,
                              rec.state == VcState::RouteWait);
                    EXPECT_EQ((ps.vcAllocWait & bit) != 0,
                              rec.state == VcState::VcAllocWait);
                    EXPECT_EQ((ps.active & bit) != 0,
                              rec.state == VcState::Active);
                }
                EXPECT_EQ((ps.schedPorts & (1u << p)) != 0,
                          router.schedule(p).valid)
                    << "node " << node << " port " << p;
            }

            // A fault-free network never trips the group-8
            // continuous screen.
            EXPECT_EQ(ps.suspect, 0u);
            EXPECT_FALSE(ps.suspectOut);

            // The packed quiescence predicate must agree with the
            // architectural one on every router every cycle.
            EXPECT_EQ(ps.quiescentPacked(), router.quiescent());
            ++checked;
        }
    });
    net.run(400);
    EXPECT_GT(checked, 0u);
}

TEST(RecomputePacked, FlagsSuspectStateAndMalformedRecords)
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    Router router(config, /*node=*/5);

    PackedRouterState ps;
    router.recomputePacked(config, ps);
    EXPECT_TRUE(ps.quiescentPacked());
    EXPECT_EQ(ps.suspect, 0u);

    // RouteWait over an empty FIFO: invariant 19 (continuous) would
    // fire, so the slot must be marked suspect.
    router.vcRecord(1, 2).state = VcState::RouteWait;
    router.recomputePacked(config, ps);
    EXPECT_NE(ps.suspect & (1ull << slot(router, 1, 2)), 0u);
    EXPECT_FALSE(ps.quiescentPacked());
    router.vcRecord(1, 2) = VcRecord{};

    // Active with an out-of-range output VC: invariant 17 territory.
    router.vcRecord(2, 0).state = VcState::Active;
    router.vcRecord(2, 0).outPort = 0;
    router.vcRecord(2, 0).outVc =
        static_cast<int>(config.router.numVcs);
    router.recomputePacked(config, ps);
    EXPECT_NE(ps.suspect & (1ull << slot(router, 2, 0)), 0u);
    router.vcRecord(2, 0) = VcRecord{};

    // A valid schedule entry alone keeps the router non-quiescent.
    router.schedule(3).valid = true;
    router.recomputePacked(config, ps);
    EXPECT_EQ(ps.suspect, 0u);
    EXPECT_EQ(ps.schedPorts, 1u << 3);
    EXPECT_FALSE(ps.quiescentPacked());
    router.schedule(3).valid = false;

    router.recomputePacked(config, ps);
    EXPECT_TRUE(ps.quiescentPacked());
}

TEST(StalenessHooks, MutableRouterAccessMarksPackedStale)
{
    NetworkConfig config;
    config.width = 3;
    config.height = 3;
    TrafficSpec traffic;
    traffic.injectionRate = 0.05;
    traffic.seed = 3;
    traffic.stopCycle = 200;

    Network net(config, traffic);
    net.setKernelMode(KernelMode::Bitmask);
    net.run(200);
    ASSERT_TRUE(net.drain(4000));

    // Hand-mutating a router through the non-const accessor must not
    // leave the bitmask kernel running on a stale packed image: the
    // next step re-derives the packed state and sees the new flit.
    const NetworkStats before = net.stats();
    Router &router = net.router(4);
    router.vcRecord(0, 0).state = VcState::RouteWait;
    net.run(1);
    (void)before;
    // The screen marks the empty-FIFO RouteWait suspect, so the
    // branchy bank must have evaluated it (dense-path eval counted).
    EXPECT_FALSE(net.router(4).quiescent());
}

} // namespace
} // namespace nocalert::noc
