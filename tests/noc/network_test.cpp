#include "noc/network.hpp"

#include <gtest/gtest.h>

#include <map>

namespace nocalert::noc {
namespace {

NetworkConfig
mesh(int w, int h)
{
    NetworkConfig config;
    config.width = w;
    config.height = h;
    return config;
}

TrafficSpec
traffic(double rate, Cycle stop = -1, std::uint64_t seed = 1)
{
    TrafficSpec spec;
    spec.injectionRate = rate;
    spec.stopCycle = stop;
    spec.seed = seed;
    return spec;
}

TEST(Network, AllPacketsDeliveredAndDrained)
{
    Network net(mesh(4, 4), traffic(0.05, 1000));
    net.run(1000);
    EXPECT_TRUE(net.drain(3000));
    const NetworkStats stats = net.stats();
    EXPECT_GT(stats.packetsCreated, 100u);
    EXPECT_EQ(stats.packetsCreated, stats.packetsInjected);
    EXPECT_EQ(stats.packetsInjected, stats.packetsEjected);
    EXPECT_EQ(stats.flitsInjected, stats.flitsEjected);
}

TEST(Network, EveryFlitReachesItsDestinationExactlyOnce)
{
    Network net(mesh(4, 4), traffic(0.08, 600));
    net.run(600);
    ASSERT_TRUE(net.drain(3000));

    std::map<std::pair<PacketId, std::uint16_t>, int> seen;
    for (const EjectionRecord &rec : net.collectEjections()) {
        EXPECT_EQ(rec.flit.dst, rec.node);
        ++seen[{rec.flit.packet, rec.flit.seq}];
    }
    for (const auto &[key, count] : seen)
        EXPECT_EQ(count, 1);
    EXPECT_EQ(seen.size(), net.stats().flitsEjected);
}

TEST(Network, IntraPacketOrderPreserved)
{
    Network net(mesh(4, 4), traffic(0.08, 600, 5));
    net.run(600);
    ASSERT_TRUE(net.drain(3000));

    std::map<PacketId, std::uint16_t> next_seq;
    for (const EjectionRecord &rec : net.collectEjections()) {
        auto [it, fresh] = next_seq.try_emplace(rec.flit.packet, 0);
        EXPECT_EQ(rec.flit.seq, it->second)
            << "packet " << rec.flit.packet;
        ++it->second;
    }
}

TEST(Network, ZeroTrafficStaysQuiescent)
{
    Network net(mesh(3, 3), traffic(0.0));
    net.run(100);
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().flitsEjected, 0u);
}

TEST(Network, DeterministicAcrossInstances)
{
    Network a(mesh(4, 4), traffic(0.05, 500, 9));
    Network b(mesh(4, 4), traffic(0.05, 500, 9));
    a.run(800);
    b.run(800);
    const auto ea = a.collectEjections();
    const auto eb = b.collectEjections();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i) {
        EXPECT_EQ(ea[i].cycle, eb[i].cycle);
        EXPECT_EQ(ea[i].node, eb[i].node);
        EXPECT_EQ(ea[i].flit, eb[i].flit);
    }
}

TEST(Network, CopyResumesIdentically)
{
    Network a(mesh(4, 4), traffic(0.06, 700, 11));
    a.run(300);
    Network b(a);
    EXPECT_EQ(b.cycle(), a.cycle());
    a.run(500);
    b.run(500);
    const auto ea = a.collectEjections();
    const auto eb = b.collectEjections();
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i)
        EXPECT_EQ(ea[i].flit, eb[i].flit);
    EXPECT_EQ(a.stats().flitsEjected, b.stats().flitsEjected);
}

TEST(Network, DenseObserversSeeEveryCycle)
{
    Network net(mesh(3, 3), traffic(0.1, 50));
    net.setKernelMode(KernelMode::Dense);
    int router_calls = 0;
    int ni_calls = 0;
    int cycle_calls = 0;
    net.setRouterObserver(
        [&](const Router &, const RouterWires &) { ++router_calls; });
    net.setNiObserver(
        [&](const NetworkInterface &, const NiWires &) { ++ni_calls; });
    net.setCycleObserver([&](const Network &) { ++cycle_calls; });
    net.run(10);
    EXPECT_EQ(router_calls, 9 * 10);
    EXPECT_EQ(ni_calls, 9 * 10);
    EXPECT_EQ(cycle_calls, 10);
}

TEST(Network, ActiveObserversSeeEveryEvaluatedModule)
{
    // The active kernel fires per-module observers exactly for the
    // modules it evaluates, and the cycle observer for every cycle.
    Network net(mesh(3, 3), traffic(0.1, 50));
    std::uint64_t router_calls = 0;
    std::uint64_t ni_calls = 0;
    int cycle_calls = 0;
    net.setRouterObserver(
        [&](const Router &, const RouterWires &) { ++router_calls; });
    net.setNiObserver(
        [&](const NetworkInterface &, const NiWires &) { ++ni_calls; });
    net.setCycleObserver([&](const Network &) { ++cycle_calls; });
    net.run(10);
    EXPECT_EQ(router_calls, net.routerEvaluations());
    EXPECT_EQ(ni_calls, net.niEvaluations());
    EXPECT_EQ(cycle_calls, 10);
    // At 10% load something must have happened, but not everywhere.
    EXPECT_GT(router_calls, 0u);
    EXPECT_LT(router_calls, 9u * 10u);
}

TEST(Network, ActiveKernelSkipsQuiescentWork)
{
    // Zero traffic: the active kernel evaluates nothing at all, while
    // the dense kernel touches every module every cycle.
    Network active(mesh(3, 3), traffic(0.0));
    active.run(100);
    EXPECT_EQ(active.routerEvaluations(), 0u);
    EXPECT_EQ(active.niEvaluations(), 0u);
    EXPECT_TRUE(active.quiescent());

    Network dense(mesh(3, 3), traffic(0.0));
    dense.setKernelMode(KernelMode::Dense);
    dense.run(100);
    EXPECT_EQ(dense.routerEvaluations(), 9u * 100u);
    EXPECT_EQ(dense.niEvaluations(), 9u * 100u);
}

TEST(Network, SettingATapHookPinsAllRoutersActive)
{
    Network net(mesh(3, 3), traffic(0.0));
    int taps = 0;
    net.setTapHook(
        [&](Router &, TapPoint tap, RouterWires &) {
            if (tap == TapPoint::CycleEnd)
                ++taps;
        });
    net.run(5);
    EXPECT_EQ(taps, 9 * 5); // every router, every cycle
    EXPECT_EQ(net.routerEvaluations(), 9u * 5u);

    // Narrowing the focus releases the pin on the other routers.
    net.setTapFocus({4});
    taps = 0;
    net.run(5);
    EXPECT_EQ(taps, 5); // only the focused router evaluates
}

TEST(Network, MutableRouterAccessWakesTheRouter)
{
    Network net(mesh(3, 3), traffic(0.0));
    net.run(3);
    EXPECT_EQ(net.routerEvaluations(), 0u);
    net.router(4); // direct-state-mutation surface
    net.run(1);
    EXPECT_EQ(net.routerEvaluations(), 1u);
    // A quiescent router retires from the active set again.
    net.run(3);
    EXPECT_EQ(net.routerEvaluations(), 1u);
}

TEST(Network, CopyDropsObservers)
{
    Network a(mesh(3, 3), traffic(0.1, 50));
    int calls = 0;
    a.setCycleObserver([&](const Network &) { ++calls; });
    Network b(a);
    b.run(5);
    EXPECT_EQ(calls, 0);
    a.run(5);
    EXPECT_EQ(calls, 5);
}

TEST(Network, HigherLoadHigherLatency)
{
    Network light(mesh(4, 4), traffic(0.02, 1500));
    Network heavy(mesh(4, 4), traffic(0.15, 1500));
    light.run(2000);
    heavy.run(2000);
    EXPECT_GT(heavy.stats().avgPacketLatency(),
              light.stats().avgPacketLatency());
}

TEST(Network, NonSquareMeshWorks)
{
    Network net(mesh(6, 2), traffic(0.05, 500));
    net.run(500);
    ASSERT_TRUE(net.drain(4000));
    const NetworkStats stats = net.stats();
    EXPECT_EQ(stats.flitsInjected, stats.flitsEjected);
    EXPECT_GT(stats.packetsEjected, 20u);
}

TEST(Network, AllRoutingAlgorithmsDeliver)
{
    for (RoutingAlgo algo : {RoutingAlgo::XY, RoutingAlgo::YX,
                             RoutingAlgo::WestFirst, RoutingAlgo::O1Turn}) {
        NetworkConfig config = mesh(4, 4);
        config.routing = algo;
        Network net(config, traffic(0.05, 500));
        net.run(500);
        ASSERT_TRUE(net.drain(4000)) << routingAlgoName(algo);
        EXPECT_EQ(net.stats().flitsInjected, net.stats().flitsEjected)
            << routingAlgoName(algo);
    }
}

TEST(Network, InFlightCensusMatchesAccounting)
{
    Network net(mesh(4, 4), traffic(0.08, 400, 3));
    net.run(200);
    const auto census = net.countInFlightFlitsPerDst(true);
    std::uint64_t in_flight = 0;
    for (std::uint64_t n : census)
        in_flight += n;
    const NetworkStats stats = net.stats();
    // Everything created but not yet ejected is somewhere in flight.
    const std::uint64_t expected =
        stats.flitsInjected - stats.flitsEjected;
    // Census additionally counts queued/unstreamed flits.
    EXPECT_GE(in_flight, expected);
    // After draining, nothing is left.
    ASSERT_TRUE(net.drain(4000));
    for (std::uint64_t n : net.countInFlightFlitsPerDst(true))
        EXPECT_EQ(n, 0u);
}

TEST(Network, StatsSummaryIsPopulated)
{
    Network net(mesh(3, 3), traffic(0.1, 100));
    net.run(200);
    const std::string summary = net.stats().summary();
    EXPECT_NE(summary.find("cycles=200"), std::string::npos);
    EXPECT_NE(summary.find("avgLat="), std::string::npos);
    EXPECT_GT(net.stats().throughput(9), 0.0);
}

} // namespace
} // namespace nocalert::noc
