#include "noc/buffer.hpp"

#include <gtest/gtest.h>

namespace nocalert::noc {
namespace {

Flit
makeFlit(PacketId pkt, std::uint16_t seq, FlitType type = FlitType::Body)
{
    Flit f;
    f.packet = pkt;
    f.seq = seq;
    f.type = type;
    return f;
}

TEST(VcFifo, StartsEmpty)
{
    VcFifo fifo(4);
    EXPECT_TRUE(fifo.empty());
    EXPECT_FALSE(fifo.full());
    EXPECT_EQ(fifo.size(), 0u);
    EXPECT_EQ(fifo.depth(), 4u);
}

TEST(VcFifo, FifoOrder)
{
    VcFifo fifo(4);
    for (std::uint16_t i = 0; i < 4; ++i)
        EXPECT_TRUE(fifo.push(makeFlit(1, i)));
    EXPECT_TRUE(fifo.full());
    for (std::uint16_t i = 0; i < 4; ++i)
        EXPECT_EQ(fifo.pop().seq, i);
    EXPECT_TRUE(fifo.empty());
}

TEST(VcFifo, PushToFullDrops)
{
    VcFifo fifo(2);
    EXPECT_TRUE(fifo.push(makeFlit(1, 0)));
    EXPECT_TRUE(fifo.push(makeFlit(1, 1)));
    EXPECT_FALSE(fifo.push(makeFlit(1, 2)));
    EXPECT_EQ(fifo.size(), 2u);
    EXPECT_EQ(fifo.pop().seq, 0);
}

TEST(VcFifo, PopEmptyReturnsStaleHeadSlot)
{
    VcFifo fifo(3);
    fifo.push(makeFlit(7, 0));
    fifo.pop();
    // Empty now; the head slot has advanced past the popped flit. A
    // stale read must not move pointers or underflow.
    const Flit stale = fifo.pop();
    EXPECT_TRUE(fifo.empty());
    // The next push/pop cycle still behaves correctly.
    fifo.push(makeFlit(8, 1));
    EXPECT_EQ(fifo.pop().packet, 8u);
    (void)stale;
}

TEST(VcFifo, StaleReadReturnsPreviousContents)
{
    VcFifo fifo(2);
    fifo.push(makeFlit(5, 3));
    EXPECT_EQ(fifo.pop().packet, 5u);
    fifo.push(makeFlit(6, 0));
    EXPECT_EQ(fifo.pop().packet, 6u);
    // Head now points at the slot that held packet 5's flit.
    EXPECT_EQ(fifo.pop().packet, 5u);
    EXPECT_TRUE(fifo.empty());
}

TEST(VcFifo, PeekBeyondSizeSeesStaleSlots)
{
    VcFifo fifo(3);
    fifo.push(makeFlit(1, 0));
    fifo.push(makeFlit(1, 1));
    fifo.pop();
    EXPECT_EQ(fifo.peek(0).seq, 1);
    // peek(1) wraps into stale territory without crashing.
    (void)fifo.peek(1);
    (void)fifo.peek(2);
}

TEST(VcFifo, WrapAroundManyTimes)
{
    VcFifo fifo(3);
    for (std::uint16_t i = 0; i < 100; ++i) {
        EXPECT_TRUE(fifo.push(makeFlit(9, i)));
        EXPECT_EQ(fifo.pop().seq, i);
    }
}

TEST(VcFifo, ClearResetsPointers)
{
    VcFifo fifo(4);
    fifo.push(makeFlit(1, 0));
    fifo.push(makeFlit(1, 1));
    fifo.clear();
    EXPECT_TRUE(fifo.empty());
    fifo.push(makeFlit(2, 5));
    EXPECT_EQ(fifo.pop().seq, 5);
}

TEST(VcRecord, ResetClearsEverything)
{
    VcRecord rec;
    rec.state = VcState::Active;
    rec.outPort = 2;
    rec.outVc = 3;
    rec.msgClass = 1;
    rec.flitsArrived = 4;
    rec.expectedLength = 5;
    rec.tailArrived = true;
    rec.lastWrittenType = FlitType::Body;
    rec.reset();
    EXPECT_EQ(rec.state, VcState::Idle);
    EXPECT_EQ(rec.outPort, kInvalidPort);
    EXPECT_EQ(rec.outVc, -1);
    EXPECT_EQ(rec.msgClass, 0);
    EXPECT_EQ(rec.flitsArrived, 0u);
    EXPECT_EQ(rec.expectedLength, 0u);
    EXPECT_FALSE(rec.tailArrived);
}

TEST(VcState, Names)
{
    EXPECT_STREQ(vcStateName(VcState::Idle), "Idle");
    EXPECT_STREQ(vcStateName(VcState::RouteWait), "RouteWait");
    EXPECT_STREQ(vcStateName(VcState::VcAllocWait), "VcAllocWait");
    EXPECT_STREQ(vcStateName(VcState::Active), "Active");
}

TEST(FlitTypes, HeadTailPredicates)
{
    EXPECT_TRUE(isHead(FlitType::Head));
    EXPECT_TRUE(isHead(FlitType::HeadTail));
    EXPECT_FALSE(isHead(FlitType::Body));
    EXPECT_TRUE(isTail(FlitType::Tail));
    EXPECT_TRUE(isTail(FlitType::HeadTail));
    EXPECT_FALSE(isTail(FlitType::Head));
}

TEST(Packet, MakeFlitTypes)
{
    Packet pkt;
    pkt.id = 1;
    pkt.src = 0;
    pkt.dst = 5;
    pkt.length = 4;
    EXPECT_EQ(pkt.makeFlit(0).type, FlitType::Head);
    EXPECT_EQ(pkt.makeFlit(1).type, FlitType::Body);
    EXPECT_EQ(pkt.makeFlit(2).type, FlitType::Body);
    EXPECT_EQ(pkt.makeFlit(3).type, FlitType::Tail);

    Packet single;
    single.id = 2;
    single.length = 1;
    EXPECT_EQ(single.makeFlit(0).type, FlitType::HeadTail);
}

TEST(Packet, MakeFlitCarriesMetadata)
{
    Packet pkt;
    pkt.id = 77;
    pkt.src = 3;
    pkt.dst = 9;
    pkt.msgClass = 1;
    pkt.length = 2;
    pkt.created = 123;
    const Flit f = pkt.makeFlit(1);
    EXPECT_EQ(f.packet, 77u);
    EXPECT_EQ(f.seq, 1);
    EXPECT_EQ(f.src, 3);
    EXPECT_EQ(f.dst, 9);
    EXPECT_EQ(f.msgClass, 1);
    EXPECT_EQ(f.injected, 123);
}

} // namespace
} // namespace nocalert::noc
