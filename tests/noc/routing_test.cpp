#include "noc/routing.hpp"

#include <gtest/gtest.h>

namespace nocalert::noc {
namespace {

NetworkConfig
mesh(int w = 4, int h = 4)
{
    NetworkConfig config;
    config.width = w;
    config.height = h;
    return config;
}

Flit
headerTo(NodeId dst, PacketId pkt = 0)
{
    Flit f;
    f.type = FlitType::Head;
    f.dst = dst;
    f.packet = pkt;
    return f;
}

constexpr int kN = portIndex(Port::North);
constexpr int kE = portIndex(Port::East);
constexpr int kS = portIndex(Port::South);
constexpr int kW = portIndex(Port::West);
constexpr int kL = portIndex(Port::Local);

TEST(XyRouting, XFirstThenY)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::XY);
    // From (1,1) to (3,2): X first -> East.
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}),
                          headerTo(cfg.nodeAt({3, 2})), kL), kE);
    // Same column, to the north -> North.
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}),
                          headerTo(cfg.nodeAt({1, 3})), kL), kN);
    // Same column, to the south -> South.
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}),
                          headerTo(cfg.nodeAt({1, 0})), kL), kS);
    // Westward.
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}),
                          headerTo(cfg.nodeAt({0, 1})), kL), kW);
}

TEST(XyRouting, EjectsAtDestination)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::XY);
    const NodeId n = cfg.nodeAt({2, 2});
    EXPECT_EQ(algo->route(cfg, n, headerTo(n), kN), kL);
}

TEST(XyRouting, InvalidDestinationGivesInvalidPort)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::XY);
    Flit garbage = headerTo(0);
    garbage.dst = 999;
    EXPECT_EQ(algo->route(cfg, 0, garbage, kL), kInvalidPort);
}

TEST(XyRouting, TurnLegality)
{
    const auto algo = makeRouting(RoutingAlgo::XY);
    const Flit f = headerTo(0);
    // X input may turn anywhere (except U-turn).
    EXPECT_TRUE(algo->legalTurn(f, kE, kN));
    EXPECT_TRUE(algo->legalTurn(f, kW, kS));
    EXPECT_TRUE(algo->legalTurn(f, kE, kW));
    // Y input may not turn back to X.
    EXPECT_FALSE(algo->legalTurn(f, kN, kE));
    EXPECT_FALSE(algo->legalTurn(f, kS, kW));
    // Y straight-through is fine.
    EXPECT_TRUE(algo->legalTurn(f, kN, kS));
    // Local is unrestricted.
    EXPECT_TRUE(algo->legalTurn(f, kL, kE));
    EXPECT_TRUE(algo->legalTurn(f, kN, kL));
    // U-turns are never legal.
    EXPECT_FALSE(algo->legalTurn(f, kE, kE));
    EXPECT_FALSE(algo->legalTurn(f, kN, kN));
    // Out-of-range ports are illegal.
    EXPECT_FALSE(algo->legalTurn(f, kE, 7));
    EXPECT_FALSE(algo->legalTurn(f, kE, -1));
}

TEST(YxRouting, YFirstThenX)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::YX);
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}),
                          headerTo(cfg.nodeAt({3, 2})), kL), kN);
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 2}),
                          headerTo(cfg.nodeAt({3, 2})), kL), kE);
    // YX forbids X-input -> Y-output turns.
    const Flit f = headerTo(0);
    EXPECT_FALSE(algo->legalTurn(f, kE, kN));
    EXPECT_TRUE(algo->legalTurn(f, kN, kE));
}

TEST(WestFirst, WestHopsComeFirst)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::WestFirst);
    // Destination to the south-west: west first.
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({3, 3}),
                          headerTo(cfg.nodeAt({1, 1})), kL), kW);
    // No west component: adaptive, must be a productive direction.
    const int out = algo->route(cfg, cfg.nodeAt({0, 0}),
                                headerTo(cfg.nodeAt({2, 3})), kL);
    EXPECT_TRUE(out == kE || out == kN);
}

TEST(WestFirst, TurnRules)
{
    const auto algo = makeRouting(RoutingAlgo::WestFirst);
    const Flit f = headerTo(0);
    // Turning into West is only legal from East input (already going
    // west) or from Local.
    EXPECT_TRUE(algo->legalTurn(f, kE, kW));
    EXPECT_TRUE(algo->legalTurn(f, kL, kW));
    EXPECT_FALSE(algo->legalTurn(f, kN, kW));
    EXPECT_FALSE(algo->legalTurn(f, kS, kW));
    // Everything else is free (it's an adaptive turn model).
    EXPECT_TRUE(algo->legalTurn(f, kN, kE));
    EXPECT_TRUE(algo->legalTurn(f, kE, kN));
}

TEST(O1Turn, PacketParityPicksOrder)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::O1Turn);
    const Flit even = headerTo(cfg.nodeAt({3, 2}), 0);
    const Flit odd = headerTo(cfg.nodeAt({3, 2}), 1);
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}), even, kL), kE); // XY
    EXPECT_EQ(algo->route(cfg, cfg.nodeAt({1, 1}), odd, kL), kN);  // YX
    // Turn legality matches the chosen order.
    EXPECT_FALSE(algo->legalTurn(even, kN, kE));
    EXPECT_TRUE(algo->legalTurn(odd, kN, kE));
    EXPECT_TRUE(algo->legalTurn(even, kE, kN));
    EXPECT_FALSE(algo->legalTurn(odd, kE, kN));
}

TEST(QAdaptive, MatchesXyWithEmptyQuarantine)
{
    const auto cfg = mesh(5, 4);
    const auto xy = makeRouting(RoutingAlgo::XY);
    const auto qa = makeRouting(RoutingAlgo::QAdaptive);
    for (NodeId src = 0; src < cfg.numNodes(); ++src) {
        for (NodeId dst = 0; dst < cfg.numNodes(); ++dst) {
            const Flit f = headerTo(dst);
            EXPECT_EQ(qa->route(cfg, src, f, kL),
                      xy->route(cfg, src, f, kL))
                << src << "->" << dst;
        }
    }
}

TEST(QAdaptive, DetoursAroundQuarantinedPort)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    const NodeId here = cfg.nodeAt({1, 1});
    const Flit f = headerTo(cfg.nodeAt({3, 1}));
    ASSERT_EQ(algo->route(cfg, here, f, kL), kE);
    algo->quarantine(here, kE);
    // Eastward progress blocked: take the perpendicular escape (a
    // non-minimal but legal west-first move).
    const int out = algo->route(cfg, here, f, kL);
    EXPECT_EQ(out, kN);
    EXPECT_TRUE(algo->legalTurn(f, kL, out));
    // The second escape kicks in when the first is quarantined too.
    algo->quarantine(here, kN);
    EXPECT_EQ(algo->route(cfg, here, f, kL), kS);
}

TEST(QAdaptive, WestHopsAreMandatory)
{
    // Turning into West is the forbidden turn, so no legal detour
    // around a quarantined West port exists; it is used regardless.
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    const NodeId here = cfg.nodeAt({2, 1});
    const Flit f = headerTo(cfg.nodeAt({0, 1}));
    algo->quarantine(here, kW);
    EXPECT_EQ(algo->route(cfg, here, f, kL), kW);
}

TEST(QAdaptive, AlignedColumnHasNoEscape)
{
    // dx == 0: overshooting east would need a forbidden west hop
    // later, so the productive Y port is taken even when quarantined.
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    const NodeId here = cfg.nodeAt({1, 1});
    const Flit f = headerTo(cfg.nodeAt({1, 3}));
    algo->quarantine(here, kN);
    EXPECT_EQ(algo->route(cfg, here, f, kL), kN);
}

TEST(QAdaptive, FallsBackThroughFullQuarantine)
{
    // Every usable candidate quarantined: emit the preferred (XY)
    // port rather than an invalid route — degraded, never wedged.
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    const NodeId here = cfg.nodeAt({1, 1});
    const Flit f = headerTo(cfg.nodeAt({2, 1}));
    algo->quarantine(here, kE);
    algo->quarantine(here, kN);
    algo->quarantine(here, kS);
    EXPECT_EQ(algo->route(cfg, here, f, kL), kE);
}

TEST(QAdaptive, NeverUturnsIntoItsInputPort)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    // Entered through East while East is also the productive port
    // (can happen after a detour): pick the perpendicular instead.
    const NodeId here = cfg.nodeAt({1, 1});
    const Flit f = headerTo(cfg.nodeAt({3, 1}));
    EXPECT_EQ(algo->route(cfg, here, f, kE), kN);
}

TEST(QAdaptive, WestFirstTurnRulesAndNoMinimality)
{
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    const Flit f = headerTo(0);
    EXPECT_TRUE(algo->legalTurn(f, kE, kW));
    EXPECT_TRUE(algo->legalTurn(f, kL, kW));
    EXPECT_FALSE(algo->legalTurn(f, kN, kW));
    EXPECT_FALSE(algo->legalTurn(f, kS, kW));
    EXPECT_TRUE(algo->legalTurn(f, kN, kE));
    EXPECT_FALSE(algo->legalTurn(f, kE, kE));
    // Escape hops are non-minimal: invariance 3 must be disarmed.
    EXPECT_FALSE(algo->minimalRequired());
}

TEST(QAdaptive, QuarantineSetBookkeeping)
{
    const auto algo = makeRouting(RoutingAlgo::QAdaptive);
    EXPECT_EQ(algo->quarantinedCount(), 0u);
    EXPECT_FALSE(algo->isQuarantined(5, kE));
    algo->quarantine(5, kE);
    EXPECT_TRUE(algo->isQuarantined(5, kE));
    EXPECT_FALSE(algo->isQuarantined(5, kW));
    EXPECT_FALSE(algo->isQuarantined(6, kE));
    algo->quarantine(5, kE); // idempotent
    EXPECT_EQ(algo->quarantinedCount(), 1u);
    algo->quarantine(6, kW);
    EXPECT_EQ(algo->quarantinedCount(), 2u);
    algo->clearQuarantine();
    EXPECT_EQ(algo->quarantinedCount(), 0u);
    EXPECT_FALSE(algo->isQuarantined(5, kE));
}

TEST(MinimalStep, DetectsProgress)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::XY);
    const NodeId here = cfg.nodeAt({1, 1});
    const Flit f = headerTo(cfg.nodeAt({3, 1}));
    EXPECT_TRUE(algo->minimalStep(cfg, here, f, kE));
    EXPECT_FALSE(algo->minimalStep(cfg, here, f, kW));
    EXPECT_FALSE(algo->minimalStep(cfg, here, f, kN));
    EXPECT_FALSE(algo->minimalStep(cfg, here, f, kL));
    // Ejection is the minimal step at the destination.
    EXPECT_TRUE(algo->minimalStep(cfg, f.dst, headerTo(f.dst), kL));
}

TEST(MinimalStep, OffMeshIsNotMinimal)
{
    const auto cfg = mesh();
    const auto algo = makeRouting(RoutingAlgo::XY);
    // West from column 0 leaves the mesh.
    EXPECT_FALSE(algo->minimalStep(cfg, cfg.nodeAt({0, 1}),
                                   headerTo(cfg.nodeAt({3, 1})), kW));
}

TEST(AllAlgorithms, RouteIsAlwaysLegalAndMinimal)
{
    const auto cfg = mesh(5, 3);
    for (RoutingAlgo kind :
         {RoutingAlgo::XY, RoutingAlgo::YX, RoutingAlgo::WestFirst,
          RoutingAlgo::O1Turn, RoutingAlgo::QAdaptive}) {
        const auto algo = makeRouting(kind);
        for (NodeId src = 0; src < cfg.numNodes(); ++src) {
            for (NodeId dst = 0; dst < cfg.numNodes(); ++dst) {
                for (PacketId pkt = 0; pkt < 2; ++pkt) {
                    const Flit f = headerTo(dst, pkt);
                    const int out = algo->route(cfg, src, f, kL);
                    ASSERT_TRUE(algo->legalTurn(f, kL, out))
                        << routingAlgoName(kind) << " " << src << "->"
                        << dst;
                    ASSERT_TRUE(algo->minimalStep(cfg, src, f, out))
                        << routingAlgoName(kind) << " " << src << "->"
                        << dst;
                }
            }
        }
    }
}

TEST(Factory, KindsRoundTrip)
{
    EXPECT_EQ(makeRouting(RoutingAlgo::XY)->kind(), RoutingAlgo::XY);
    EXPECT_EQ(makeRouting(RoutingAlgo::YX)->kind(), RoutingAlgo::YX);
    EXPECT_EQ(makeRouting(RoutingAlgo::WestFirst)->kind(),
              RoutingAlgo::WestFirst);
    EXPECT_EQ(makeRouting(RoutingAlgo::O1Turn)->kind(),
              RoutingAlgo::O1Turn);
    EXPECT_EQ(makeRouting(RoutingAlgo::QAdaptive)->kind(),
              RoutingAlgo::QAdaptive);
}

TEST(Factory, NamesRoundTrip)
{
    for (RoutingAlgo kind :
         {RoutingAlgo::XY, RoutingAlgo::YX, RoutingAlgo::WestFirst,
          RoutingAlgo::O1Turn, RoutingAlgo::QAdaptive}) {
        const auto back = routingAlgoFromName(routingAlgoName(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
    EXPECT_STREQ(routingAlgoName(RoutingAlgo::QAdaptive), "QAdaptive");
    EXPECT_FALSE(routingAlgoFromName("NotARouting").has_value());
}

} // namespace
} // namespace nocalert::noc
