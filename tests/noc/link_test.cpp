#include "noc/link.hpp"

#include <gtest/gtest.h>

namespace nocalert::noc {
namespace {

TEST(Link, OneCycleLatency)
{
    Link link;
    link.sendValid = true;
    link.sendFlit.packet = 42;
    EXPECT_FALSE(link.recvValid);
    link.tick();
    EXPECT_TRUE(link.recvValid);
    EXPECT_EQ(link.recvFlit.packet, 42u);
    EXPECT_FALSE(link.sendValid);
    link.tick();
    EXPECT_FALSE(link.recvValid);
}

TEST(Link, CreditChannelIndependent)
{
    Link link;
    link.creditSend = 0b101;
    link.tick();
    EXPECT_EQ(link.creditRecv, 0b101u);
    EXPECT_EQ(link.creditSend, 0u);
    link.tick();
    EXPECT_EQ(link.creditRecv, 0u);
}

TEST(Link, BackToBackFlits)
{
    Link link;
    for (std::uint16_t i = 0; i < 5; ++i) {
        link.sendValid = true;
        link.sendFlit.seq = i;
        link.tick();
        EXPECT_TRUE(link.recvValid);
        EXPECT_EQ(link.recvFlit.seq, i);
    }
}

TEST(Link, ClearDropsInFlight)
{
    Link link;
    link.sendValid = true;
    link.creditSend = 3;
    link.tick();
    link.clear();
    EXPECT_FALSE(link.recvValid);
    EXPECT_FALSE(link.sendValid);
    EXPECT_EQ(link.creditRecv, 0u);
}

} // namespace
} // namespace nocalert::noc
