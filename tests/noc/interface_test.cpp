#include "noc/interface.hpp"

#include <gtest/gtest.h>

namespace nocalert::noc {
namespace {

NetworkConfig
defaultConfig()
{
    NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

Packet
makePacket(NodeId src, NodeId dst, std::uint8_t cls, PacketId id = 1)
{
    Packet pkt;
    pkt.id = id;
    pkt.src = src;
    pkt.dst = dst;
    pkt.msgClass = cls;
    pkt.length = cls == 0 ? 1 : 5;
    return pkt;
}

TEST(NetworkInterface, StartsIdle)
{
    NetworkInterface ni(defaultConfig(), 3);
    EXPECT_TRUE(ni.idle());
    EXPECT_EQ(ni.queueDepth(), 0u);
}

TEST(NetworkInterface, StreamsPacketRespectingOneFlitPerCycle)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 0);
    ni.enqueue(makePacket(0, 5, 1)); // 5-flit data packet

    std::vector<Flit> sent;
    for (Cycle c = 0; c < 10; ++c) {
        NetworkInterface::LinkIo io;
        ni.evaluate(c, io);
        if (io.outValid)
            sent.push_back(io.outFlit);
    }
    ASSERT_EQ(sent.size(), 5u);
    EXPECT_EQ(sent[0].type, FlitType::Head);
    EXPECT_EQ(sent[4].type, FlitType::Tail);
    for (std::uint16_t i = 0; i < 5; ++i) {
        EXPECT_EQ(sent[i].seq, i);
        EXPECT_EQ(sent[i].vc, sent[0].vc); // whole wormhole on one VC
    }
    EXPECT_EQ(ni.packetsInjected(), 1u);
    EXPECT_EQ(ni.flitsInjected(), 5u);
    EXPECT_TRUE(ni.idle());
}

TEST(NetworkInterface, ClassSelectsVcPartition)
{
    const auto cfg = defaultConfig(); // VCs 0-1 ctrl, 2-3 data
    NetworkInterface ni(cfg, 0);
    ni.enqueue(makePacket(0, 1, 0, 1));
    NetworkInterface::LinkIo io;
    ni.evaluate(0, io);
    ASSERT_TRUE(io.outValid);
    EXPECT_EQ(cfg.router.vcClass(io.outFlit.vc), 0u);

    NetworkInterface ni2(cfg, 0);
    ni2.enqueue(makePacket(0, 1, 1, 2));
    NetworkInterface::LinkIo io2;
    ni2.evaluate(0, io2);
    ASSERT_TRUE(io2.outValid);
    EXPECT_EQ(cfg.router.vcClass(io2.outFlit.vc), 1u);
}

TEST(NetworkInterface, RespectsCredits)
{
    const auto cfg = defaultConfig(); // depth 5
    NetworkInterface ni(cfg, 0);
    ni.enqueue(makePacket(0, 5, 1, 1)); // 5 flits
    ni.enqueue(makePacket(0, 5, 1, 2));

    int sent = 0;
    for (Cycle c = 0; c < 20; ++c) {
        NetworkInterface::LinkIo io;
        ni.evaluate(c, io);
        sent += io.outValid ? 1 : 0;
    }
    // Without credit returns: 5 flits of packet 1 exhaust the VC, and
    // the atomic allocation of packet 2 needs a fully drained buffer.
    // The other data-class VC can carry packet 2's flits though.
    EXPECT_EQ(sent, 10);

    // Now return credits and watch streaming resume.
    NetworkInterface ni2(cfg, 0);
    ni2.enqueue(makePacket(0, 5, 1, 1));
    ni2.enqueue(makePacket(0, 5, 1, 2));
    ni2.enqueue(makePacket(0, 5, 1, 3));
    sent = 0;
    for (Cycle c = 0; c < 40; ++c) {
        NetworkInterface::LinkIo io;
        io.creditIn = 0b1111; // credits pour back on every VC
        ni2.evaluate(c, io);
        sent += io.outValid ? 1 : 0;
    }
    EXPECT_EQ(sent, 15);
}

TEST(NetworkInterface, EjectLogsAndReturnsCredit)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 5);
    Packet pkt = makePacket(0, 5, 0);
    NetworkInterface::LinkIo io;
    io.inValid = true;
    io.inFlit = pkt.makeFlit(0);
    io.inFlit.vc = 1;
    ni.evaluate(7, io);
    EXPECT_EQ(io.creditOut, 0b10u);
    ASSERT_EQ(ni.ejectionLog().size(), 1u);
    EXPECT_EQ(ni.ejectionLog()[0].cycle, 7);
    EXPECT_EQ(ni.ejectionLog()[0].node, 5);
    EXPECT_EQ(ni.wires().anomalies, 0u);
    EXPECT_EQ(ni.packetsEjected(), 1u);
}

TEST(NetworkInterface, WrongDestinationAnomaly)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 4);
    Packet pkt = makePacket(0, 5, 0);
    NetworkInterface::LinkIo io;
    io.inValid = true;
    io.inFlit = pkt.makeFlit(0); // dst 5, ejected at node 4
    ni.evaluate(0, io);
    EXPECT_TRUE(ni.wires().anomalies & kNiWrongDestination);
}

TEST(NetworkInterface, BodyWithoutHeaderAnomaly)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 5);
    Packet pkt = makePacket(0, 5, 1);
    NetworkInterface::LinkIo io;
    io.inValid = true;
    io.inFlit = pkt.makeFlit(2); // body out of nowhere
    ni.evaluate(0, io);
    EXPECT_TRUE(ni.wires().anomalies & kNiUnexpectedFlit);
}

TEST(NetworkInterface, SequenceOrderAnomaly)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 5);
    Packet pkt = makePacket(0, 5, 1);
    Cycle cycle = 0;
    auto deliver = [&](std::uint16_t seq) {
        NetworkInterface::LinkIo io;
        io.inValid = true;
        io.inFlit = pkt.makeFlit(seq);
        io.inFlit.vc = 2;
        ni.evaluate(cycle++, io);
        return ni.wires().anomalies;
    };
    EXPECT_EQ(deliver(0), 0u);
    EXPECT_EQ(deliver(1), 0u);
    EXPECT_NE(deliver(3) & kNiOrderViolation, 0u); // skipped seq 2
}

TEST(NetworkInterface, InterleavedPacketAnomaly)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 5);
    Packet a = makePacket(0, 5, 1, 1);
    Packet b = makePacket(1, 5, 1, 2);
    Cycle cycle = 0;
    auto deliver = [&](const Packet &pkt, std::uint16_t seq) {
        NetworkInterface::LinkIo io;
        io.inValid = true;
        io.inFlit = pkt.makeFlit(seq);
        io.inFlit.vc = 2;
        ni.evaluate(cycle++, io);
        return ni.wires().anomalies;
    };
    EXPECT_EQ(deliver(a, 0), 0u);
    // A foreign packet's body mixed into a's wormhole.
    EXPECT_NE(deliver(b, 1) & kNiOrderViolation, 0u);
}

TEST(NetworkInterface, LatencyAccounting)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 5);
    Packet pkt = makePacket(0, 5, 0);
    pkt.created = 10;
    NetworkInterface::LinkIo io;
    io.inValid = true;
    io.inFlit = pkt.makeFlit(0);
    ni.evaluate(35, io);
    EXPECT_EQ(ni.latencySum(), 25u);
}

TEST(NetworkInterface, PendingFlitCensus)
{
    const auto cfg = defaultConfig();
    NetworkInterface ni(cfg, 0);
    ni.enqueue(makePacket(0, 5, 1, 1)); // 5 flits
    ni.enqueue(makePacket(0, 9, 0, 2)); // 1 flit

    // Nothing streamed yet: census with queued = 6, without = 0.
    auto all = ni.pendingFlitsByDst(true);
    std::uint64_t total = 0;
    for (const auto &[dst, n] : all)
        total += n;
    EXPECT_EQ(total, 6u);
    EXPECT_TRUE(ni.pendingFlitsByDst(false).empty());

    // Stream two flits of the first packet.
    for (Cycle c = 0; c < 2; ++c) {
        NetworkInterface::LinkIo io;
        ni.evaluate(c, io);
        EXPECT_TRUE(io.outValid);
    }
    const auto streaming = ni.pendingFlitsByDst(false);
    ASSERT_EQ(streaming.size(), 1u);
    EXPECT_EQ(streaming[0].first, 5);
    EXPECT_EQ(streaming[0].second, 3u);
}

} // namespace
} // namespace nocalert::noc
