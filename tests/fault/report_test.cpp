#include "fault/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nocalert::fault {
namespace {

CampaignResult
tinyCampaign()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.warmup = 100;
    config.observeWindow = 800;
    config.drainLimit = 3000;
    config.maxSites = 8;
    config.forever.epochLength = 300;
    return FaultCampaign(config).run();
}

TEST(CampaignReport, CsvHasHeaderAndOneRowPerRun)
{
    const CampaignResult result = tinyCampaign();
    std::ostringstream os;
    writeCampaignCsv(result, os);
    const std::string csv = os.str();

    std::size_t lines = 0;
    for (char ch : csv)
        lines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(lines, result.runs.size() + 1);
    EXPECT_EQ(csv.rfind("router,signal,port", 0), 0u);
    // Signal names appear verbatim.
    EXPECT_NE(csv.find(signalClassName(result.runs[0].site.signal)),
              std::string::npos);
}

TEST(CampaignReport, CsvEncodesVerdicts)
{
    const CampaignResult result = tinyCampaign();
    std::ostringstream os;
    writeCampaignCsv(result, os);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line); // header
    std::size_t row = 0;
    while (std::getline(is, line)) {
        const FaultRunResult &run = result.runs[row++];
        // Split keeping empty cells (a trailing comma is a real cell).
        std::vector<std::string> cells;
        std::size_t start = 0;
        while (true) {
            const std::size_t comma = line.find(',', start);
            cells.push_back(line.substr(start, comma - start));
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
        ASSERT_GE(cells.size(), 17u);
        EXPECT_EQ(cells[8], run.detected ? "1" : "0");
        EXPECT_EQ(cells[5], run.violated ? "1" : "0");
        // Latency cells are empty exactly when the detector did not
        // fire (kNoDetection never leaks into the export).
        EXPECT_EQ(cells[9].empty(), !run.detected);
        EXPECT_EQ(cells[9].find('-'), std::string::npos);
        EXPECT_EQ(cells[16].empty(), !run.foreverDetected);
    }
    EXPECT_EQ(row, result.runs.size());
}

TEST(CampaignReport, SummaryTextMentionsDetectors)
{
    const CampaignResult result = tinyCampaign();
    const std::string text = summaryText(result);
    EXPECT_NE(text.find("NoCAlert"), std::string::npos);
    EXPECT_NE(text.find("ForEVeR"), std::string::npos);
    EXPECT_NE(text.find("campaign: 8 runs"), std::string::npos);
}

} // namespace
} // namespace nocalert::fault
