#include "fault/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace nocalert::fault {
namespace {

CampaignResult
tinyCampaign()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.traffic.injectionRate = 0.05;
    config.warmup = 100;
    config.observeWindow = 800;
    config.drainLimit = 3000;
    config.maxSites = 8;
    config.forever.epochLength = 300;
    return FaultCampaign(config).run();
}

TEST(CampaignReport, CsvHasHeaderAndOneRowPerRun)
{
    const CampaignResult result = tinyCampaign();
    std::ostringstream os;
    writeCampaignCsv(result, os);
    const std::string csv = os.str();

    std::size_t lines = 0;
    for (char ch : csv)
        lines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(lines, result.runs.size() + 1);
    EXPECT_EQ(csv.rfind("router,signal,port", 0), 0u);
    // Signal names appear verbatim.
    EXPECT_NE(csv.find(signalClassName(result.runs[0].site.signal)),
              std::string::npos);
}

TEST(CampaignReport, CsvEncodesVerdicts)
{
    const CampaignResult result = tinyCampaign();
    std::ostringstream os;
    writeCampaignCsv(result, os);
    std::istringstream is(os.str());
    std::string line;
    std::getline(is, line); // header
    std::size_t row = 0;
    while (std::getline(is, line)) {
        const FaultRunResult &run = result.runs[row++];
        // The detected flag is column 9 (0-indexed 8).
        std::vector<std::string> cells;
        std::string cell;
        std::istringstream ls(line);
        while (std::getline(ls, cell, ','))
            cells.push_back(cell);
        ASSERT_GE(cells.size(), 17u);
        EXPECT_EQ(cells[8], run.detected ? "1" : "0");
        EXPECT_EQ(cells[5], run.violated ? "1" : "0");
    }
    EXPECT_EQ(row, result.runs.size());
}

TEST(CampaignReport, SummaryTextMentionsDetectors)
{
    const CampaignResult result = tinyCampaign();
    const std::string text = summaryText(result);
    EXPECT_NE(text.find("NoCAlert"), std::string::npos);
    EXPECT_NE(text.find("ForEVeR"), std::string::npos);
    EXPECT_NE(text.find("campaign: 8 runs"), std::string::npos);
}

} // namespace
} // namespace nocalert::fault
