/**
 * Schema v4 / v5 contract for sampled campaigns: exhaustive artifacts
 * keep writing the legacy v4 document byte for byte, sampled artifacts
 * round-trip as v5 with their sampling block recompute-validated, the
 * version field and the sampling state must agree, and every sampling
 * parameter is campaign identity.
 */

#include "fault/campaign.hpp"
#include "fault/sampled.hpp"
#include "fault/serialize.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nocalert::fault {
namespace {

CampaignConfig
tinyCampaign()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 13;
    config.warmup = 200;
    config.observeWindow = 1200;
    config.drainLimit = 4000;
    config.maxSites = 8;
    config.runForever = false;
    return config;
}

CampaignConfig
tinySampled()
{
    CampaignConfig config = tinyCampaign();
    config.sampling.enabled = true;
    config.sampling.ciHalfWidth = 0.0;
    config.sampling.maxRuns = 8;
    config.sampling.batchSize = 8;
    config.sampling.seedCount = 2;
    config.sampling.cycleJitter = 32;
    config.sampling.samplerSeed = 21;
    return config;
}

/** One finished sampled result, computed once per process. */
const CampaignResult &
sampledResult()
{
    static const CampaignResult result =
        FaultCampaign(tinySampled()).run();
    return result;
}

TEST(SampledSerialize, ExhaustiveArtifactsStayOnSchemaV4)
{
    // Backward compatibility is a writer property here: with sampling
    // disabled the document must remain the exact legacy v4 shape —
    // same version number, no sampling keys anywhere — so pre-v5
    // artifacts and fresh exhaustive ones stay interchangeable.
    EXPECT_EQ(campaignSchemaVersionFor(tinyCampaign()), 4);
    const CampaignResult result = FaultCampaign(tinyCampaign()).run();
    const JsonValue doc = toJson(result);
    ASSERT_NE(doc.find("version"), nullptr);
    EXPECT_EQ(doc.find("version")->asInt(), 4);
    EXPECT_EQ(doc.find("sampling"), nullptr);
    EXPECT_EQ(doc.find("samplerDone"), nullptr);
    ASSERT_NE(doc.find("config"), nullptr);
    EXPECT_EQ(doc.find("config")->find("sampling"), nullptr);

    std::string error;
    const auto restored =
        readCampaignJson(writeCampaignJson(result), &error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_TRUE(restored->complete());
    EXPECT_FALSE(restored->config.sampling.enabled);
}

TEST(SampledSerialize, SampledArtifactRoundTripsOnSchemaV5)
{
    EXPECT_EQ(campaignSchemaVersionFor(tinySampled()), 5);
    const CampaignResult &result = sampledResult();
    ASSERT_TRUE(result.complete());

    const JsonValue doc = toJson(result);
    ASSERT_NE(doc.find("version"), nullptr);
    EXPECT_EQ(doc.find("version")->asInt(), 5);
    EXPECT_NE(doc.find("sampling"), nullptr);
    EXPECT_NE(doc.find("samplerDone"), nullptr);

    const std::string text = writeCampaignJson(result);
    std::string error;
    const auto restored = readCampaignJson(text, &error);
    ASSERT_TRUE(restored.has_value()) << error;
    EXPECT_TRUE(restored->config.sampling.enabled);
    EXPECT_TRUE(restored->samplerDone);
    EXPECT_TRUE(restored->complete());
    EXPECT_EQ(restored->config.sampling.samplerSeed, 21u);
    EXPECT_EQ(restored->config.sampling.seedCount, 2u);
    EXPECT_EQ(restored->config.sampling.cycleJitter, 32);
    EXPECT_EQ(restored->config.sampling.maxRuns, 8u);
    ASSERT_EQ(restored->runs.size(), result.runs.size());
    for (std::size_t i = 0; i < result.runs.size(); ++i) {
        EXPECT_EQ(restored->runs[i].stratum, result.runs[i].stratum);
        EXPECT_EQ(restored->runs[i].seedIndex,
                  result.runs[i].seedIndex);
    }

    // Byte-identical re-serialization, like the v4 contract.
    EXPECT_EQ(writeCampaignJson(*restored), text);
}

TEST(SampledSerialize, VersionMustAgreeWithSamplingState)
{
    // A sampled document downgraded to version 4 and an exhaustive
    // document upgraded to version 5 are both corrupt: the version is
    // not advisory, it must match what the config implies.
    JsonValue sampled = toJson(sampledResult());
    sampled.set("version", 4);
    std::string error;
    EXPECT_FALSE(campaignResultFromJson(sampled, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    const CampaignResult exhaustive =
        FaultCampaign(tinyCampaign()).run();
    JsonValue doc = toJson(exhaustive);
    doc.set("version", 5);
    error.clear();
    EXPECT_FALSE(campaignResultFromJson(doc, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;

    // Outside the supported range entirely.
    JsonValue future = toJson(sampledResult());
    future.set("version", kCampaignSchemaVersion + 1);
    error.clear();
    EXPECT_FALSE(campaignResultFromJson(future, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos) << error;
}

TEST(SampledSerialize, TamperedSamplingBlockIsRejected)
{
    // The sampling block is recompute-validated like telemetry: a
    // document whose estimates disagree with its own runs is corrupt.
    JsonValue doc = toJson(sampledResult());
    JsonValue sampling = *doc.find("sampling");
    JsonValue pooled = *sampling.find("pooled");
    pooled.set("detected", 999);
    sampling.set("pooled", std::move(pooled));
    doc.set("sampling", std::move(sampling));
    std::string error;
    EXPECT_FALSE(campaignResultFromJson(doc, &error).has_value());
    EXPECT_NE(error.find("sampling"), std::string::npos) << error;
}

TEST(SampledSerialize, OutOfRangeDrawTagsAreRejected)
{
    // Per-run draw coordinates are bounded by the spec: a stratum tag
    // past the planner's stratum count or a seed index past seedCount
    // cannot have been produced by this campaign.
    auto tamperRun = [](const char *key, int value) {
        JsonValue doc = toJson(sampledResult());
        JsonValue::Array runs = doc.find("runs")->array();
        runs[0].set(key, value);
        doc.set("runs", JsonValue(std::move(runs)));
        std::string error;
        EXPECT_FALSE(campaignResultFromJson(doc, &error).has_value());
        return error;
    };
    EXPECT_NE(tamperRun("stratum", 99).find("draw tags out of range"),
              std::string::npos);
    // seedCount is 2, so index 7 is impossible.
    EXPECT_NE(tamperRun("seedIndex", 7).find("draw tags out of range"),
              std::string::npos);
}

TEST(SampledSerialize, EverySamplingKnobIsCampaignIdentity)
{
    const CampaignConfig base = tinySampled();
    // Execution knobs still do not matter.
    {
        CampaignConfig other = base;
        other.jobs = 16;
        other.checkpointPath = "elsewhere.json";
        other.checkpointEvery = 1;
        EXPECT_EQ(campaignIdentityJson(base),
                  campaignIdentityJson(other));
    }
    // Toggling sampling itself, or any knob of the spec, changes
    // which runs exist — all of it is identity.
    auto differs = [&](auto mutate) {
        CampaignConfig other = base;
        mutate(other.sampling);
        return campaignIdentityJson(base) != campaignIdentityJson(other);
    };
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.enabled = false; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.samplerSeed += 1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.maxRuns += 1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.batchSize += 1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.ciHalfWidth = 0.1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.confidence = 0.99; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.seedCount += 1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.cycleJitter += 1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.minPerStratum += 1; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) { s.reallocate = false; }));
    EXPECT_TRUE(differs(
        [](SamplingSpec &s) { s.stratify = Stratify::None; }));
    EXPECT_TRUE(differs([](SamplingSpec &s) {
        s.method = stats::IntervalMethod::ClopperPearson;
    }));
}

TEST(SampledSerialize, SamplingReportIsAPureFunctionOfRuns)
{
    // Two independent computations over the same result must agree
    // exactly — the property the reader's validation relies on.
    const CampaignResult &result = sampledResult();
    const SamplingReport a = computeSamplingReport(result);
    const SamplingReport b = computeSamplingReport(result);
    EXPECT_EQ(toJson(a).dump(), toJson(b).dump());

    // And the serialized block is that computation, verbatim.
    const JsonValue doc = toJson(result);
    ASSERT_NE(doc.find("sampling"), nullptr);
    EXPECT_EQ(doc.find("sampling")->dump(), toJson(a).dump());
}

} // namespace
} // namespace nocalert::fault
