/**
 * @file
 * Schema-v6 serialization of non-synthetic workloads: the "workload"
 * config block round-trips every phased/trace field, synthetic
 * configs keep emitting the legacy flat "traffic" block byte-for-byte
 * (v4/v5 compatibility), the version tag tracks the workload kind,
 * and a document cannot carry both blocks at once.
 */

#include "fault/serialize.hpp"
#include "traffic/workload.hpp"
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nocalert::fault {
namespace {

using traffic::WorkloadKind;

CampaignConfig
phasedConfig()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.warmup = 300;
    config.observeWindow = 900;
    config.maxSites = 6;
    config.workload.kind = WorkloadKind::Phased;
    config.workload.phased.seed = 77;
    config.workload.phased.stopCycle = 1200;
    config.workload.phased.repeat = true;
    config.workload.phased.segments = {
        {.begin = 0,
         .end = 400,
         .pattern = noc::TrafficPattern::UniformRandom,
         .rate = 0.05,
         .classWeights = {0.25, 0.75},
         .hotspot = {}},
        {.begin = 500,
         .end = 900,
         .pattern = noc::TrafficPattern::Hotspot,
         .rate = 0.12,
         .classWeights = {},
         .hotspot = {.node = 9, .fraction = 0.35}},
    };
    config.workload.phased.burst.enabled = true;
    config.workload.phased.burst.period = 48;
    config.workload.phased.burst.onProbability = 0.3;
    config.workload.phased.burst.onMultiplier = 2.5;
    config.workload.phased.burst.offMultiplier = 0.1;
    config.workload.phased.burst.layers = 3;
    return config;
}

CampaignConfig
traceConfig()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.maxSites = 6;
    config.workload.kind = WorkloadKind::Trace;
    config.workload.trace.path = "runs/e16.trace";
    config.workload.trace.digest = 0xdeadbeef;
    config.workload.trace.records = 4242;
    config.workload.trace.stopCycle = 2000;
    return config;
}

TEST(WorkloadSerialize, SchemaVersionTracksTheWorkloadKind)
{
    CampaignConfig synthetic;
    EXPECT_EQ(campaignSchemaVersionFor(synthetic), 4);
    synthetic.sampling.enabled = true;
    EXPECT_EQ(campaignSchemaVersionFor(synthetic),
              kCampaignSchemaVersionSampled);

    EXPECT_EQ(campaignSchemaVersionFor(phasedConfig()),
              kCampaignSchemaVersion);
    EXPECT_EQ(campaignSchemaVersionFor(traceConfig()),
              kCampaignSchemaVersion);
}

TEST(WorkloadSerialize, PhasedConfigRoundTripsEveryField)
{
    const CampaignConfig config = phasedConfig();
    const JsonValue json = toJson(config);

    // Non-synthetic configs emit "workload", never "traffic".
    EXPECT_NE(json.find("workload"), nullptr);
    EXPECT_EQ(json.find("traffic"), nullptr);

    std::string error;
    const auto parsed = campaignConfigFromJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->workload, config.workload);
    EXPECT_EQ(parsed->workload.phased.segments,
              config.workload.phased.segments);
    EXPECT_EQ(parsed->workload.phased.burst,
              config.workload.phased.burst);
}

TEST(WorkloadSerialize, TraceConfigRoundTripsEveryField)
{
    const CampaignConfig config = traceConfig();
    std::string error;
    const auto parsed = campaignConfigFromJson(toJson(config), &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->workload, config.workload);
    EXPECT_EQ(parsed->workload.trace.path, "runs/e16.trace");
    EXPECT_EQ(parsed->workload.trace.digest, 0xdeadbeefu);
    EXPECT_EQ(parsed->workload.trace.records, 4242u);
}

TEST(WorkloadSerialize, SyntheticConfigKeepsTheLegacyTrafficBlock)
{
    // Byte-stability of pre-workload artifacts: a synthetic config
    // serializes exactly as before the workload engine existed — flat
    // "traffic" block, flat hotspot keys, no "workload" key anywhere.
    CampaignConfig config;
    config.workload.synthetic.pattern = noc::TrafficPattern::Hotspot;
    config.workload.synthetic.injectionRate = 0.07;
    config.workload.synthetic.hotspot.node = 3;
    config.workload.synthetic.hotspot.fraction = 0.5;

    const JsonValue json = toJson(config);
    EXPECT_EQ(json.find("workload"), nullptr);
    const JsonValue *traffic = json.find("traffic");
    ASSERT_NE(traffic, nullptr);
    ASSERT_NE(traffic->find("hotspot"), nullptr);
    ASSERT_NE(traffic->find("hotspotFraction"), nullptr);
    EXPECT_EQ(traffic->find("hotspot")->asInt(), 3);
    EXPECT_DOUBLE_EQ(traffic->find("hotspotFraction")->asDouble(), 0.5);

    std::string error;
    const auto parsed = campaignConfigFromJson(json, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->workload.kind, WorkloadKind::Synthetic);
    EXPECT_EQ(parsed->workload.synthetic.hotspot.node, 3);
    EXPECT_DOUBLE_EQ(parsed->workload.synthetic.hotspot.fraction, 0.5);
}

TEST(WorkloadSerialize, DocumentWithBothBlocksIsRejected)
{
    const JsonValue synthetic_json = toJson(CampaignConfig{});
    const JsonValue *traffic = synthetic_json.find("traffic");
    ASSERT_NE(traffic, nullptr);

    JsonValue hybrid = toJson(phasedConfig());
    hybrid.set("traffic", *traffic);
    std::string error;
    EXPECT_FALSE(campaignConfigFromJson(hybrid, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST(WorkloadSerialize, UnknownWorkloadKindIsRejected)
{
    // The workload block's "kind" value is the first "phased" in the
    // document (the phased sub-block key follows it).
    std::string text = toJson(phasedConfig()).dump(2);
    const std::size_t at = text.find("phased");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 6, "quantum");

    const auto json = parseJson(text);
    ASSERT_TRUE(json.has_value());
    std::string error;
    EXPECT_FALSE(campaignConfigFromJson(*json, &error).has_value());
    EXPECT_NE(error.find("kind"), std::string::npos) << error;
}

TEST(WorkloadSerialize, InvalidWorkloadFieldsAreRejectedOnLoad)
{
    // Overlapping segments in a stored document must not survive the
    // read path.
    CampaignConfig config = phasedConfig();
    config.workload.phased.segments[1].begin = 100;
    std::string error;
    EXPECT_FALSE(
        campaignConfigFromJson(toJson(config), &error).has_value());
    EXPECT_NE(error.find("overlap"), std::string::npos) << error;
}

TEST(WorkloadSerialize, ResultVersionMustAgreeWithTheWorkload)
{
    // A complete phased campaign serializes as v6; rewriting the
    // version to 4 or 5 must be rejected — the version is part of the
    // document's self-description.
    CampaignConfig config = phasedConfig();
    config.warmup = 100;
    config.observeWindow = 300;
    config.drainLimit = 2000;
    config.maxSites = 2;
    config.runForever = false;
    config.workload.phased.stopCycle = -1;
    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();
    ASSERT_TRUE(result.complete());

    JsonValue json = toJson(result);
    ASSERT_NE(json.find("version"), nullptr);
    EXPECT_EQ(json.find("version")->asInt(), kCampaignSchemaVersion);

    std::string error;
    EXPECT_TRUE(campaignResultFromJson(json, &error).has_value())
        << error;

    json.set("version", JsonValue(std::int64_t{5}));
    EXPECT_FALSE(campaignResultFromJson(json, &error).has_value());
    EXPECT_FALSE(error.empty());
    json.set("version", JsonValue(std::int64_t{4}));
    EXPECT_FALSE(campaignResultFromJson(json, &error).has_value());
}

TEST(WorkloadSerialize, PhasedResultRoundTripsByteIdentically)
{
    CampaignConfig config = phasedConfig();
    config.warmup = 100;
    config.observeWindow = 300;
    config.drainLimit = 2000;
    config.maxSites = 4;
    config.runForever = false;
    config.workload.phased.stopCycle = -1;
    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();
    ASSERT_TRUE(result.complete());

    const std::string text = writeCampaignJson(result);
    std::string error;
    const auto loaded = readCampaignJson(text, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(writeCampaignJson(*loaded), text);
    // Only the active backend's spec is serialized; the other
    // backends' fields are execution scratch (normalizedCampaignConfig
    // pins stopCycle on all of them), so compare the phased surface.
    EXPECT_EQ(loaded->config.workload.kind, result.config.workload.kind);
    EXPECT_EQ(loaded->config.workload.phased,
              result.config.workload.phased);
}

TEST(WorkloadSerialize, IdentityJsonCarriesTheWorkload)
{
    const JsonValue identity = campaignIdentityJson(phasedConfig());
    ASSERT_NE(identity.find("workload"), nullptr);
    EXPECT_NE(identity.find("workload")->find("phased"), nullptr);

    // And the trace identity pins path + digest.
    const JsonValue trace_id = campaignIdentityJson(traceConfig());
    const JsonValue *trace = trace_id.find("workload")->find("trace");
    ASSERT_NE(trace, nullptr);
    EXPECT_NE(trace->find("digest"), nullptr);
}

} // namespace
} // namespace nocalert::fault
