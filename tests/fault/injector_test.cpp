#include "fault/injector.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/nocalert.hpp"

namespace nocalert::fault {
namespace {

TEST(FaultKinds, ActivationWindows)
{
    FaultSpec transient;
    transient.cycle = 100;
    transient.kind = FaultKind::Transient;
    EXPECT_FALSE(FaultInjector::activeAt(transient, 99));
    EXPECT_TRUE(FaultInjector::activeAt(transient, 100));
    EXPECT_FALSE(FaultInjector::activeAt(transient, 101));

    FaultSpec permanent;
    permanent.cycle = 100;
    permanent.kind = FaultKind::Permanent;
    EXPECT_FALSE(FaultInjector::activeAt(permanent, 99));
    EXPECT_TRUE(FaultInjector::activeAt(permanent, 100));
    EXPECT_TRUE(FaultInjector::activeAt(permanent, 100000));

    FaultSpec intermittent;
    intermittent.cycle = 100;
    intermittent.kind = FaultKind::Intermittent;
    intermittent.period = 10;
    intermittent.duty = 2;
    EXPECT_TRUE(FaultInjector::activeAt(intermittent, 100));
    EXPECT_TRUE(FaultInjector::activeAt(intermittent, 101));
    EXPECT_FALSE(FaultInjector::activeAt(intermittent, 102));
    EXPECT_TRUE(FaultInjector::activeAt(intermittent, 110));
    EXPECT_FALSE(FaultInjector::activeAt(intermittent, 99));
}

TEST(FaultKinds, Names)
{
    EXPECT_STREQ(faultKindName(FaultKind::Transient), "transient");
    EXPECT_STREQ(faultKindName(FaultKind::Permanent), "permanent");
    EXPECT_STREQ(faultKindName(FaultKind::Intermittent), "intermittent");
}

class ApplyFixture : public ::testing::Test
{
  protected:
    ApplyFixture() : router_(config(), 5) { wires_.clear(0, 5); }

    static noc::NetworkConfig
    config()
    {
        noc::NetworkConfig cfg;
        cfg.width = 4;
        cfg.height = 4;
        return cfg;
    }

    void
    apply(SignalClass cls, int port, int vc, unsigned bit)
    {
        FaultInjector::applyToRouter(router_, wires_,
                                     {5, cls, port, vc, bit});
    }

    noc::Router router_;
    noc::RouterWires wires_;
};

TEST_F(ApplyFixture, WireFlipsToggle)
{
    apply(SignalClass::Sa1Grant, 1, -1, 2);
    EXPECT_EQ(wires_.in[1].sa1Grant, 0b100u);
    apply(SignalClass::Sa1Grant, 1, -1, 2);
    EXPECT_EQ(wires_.in[1].sa1Grant, 0u);
}

TEST_F(ApplyFixture, WriteEnableAndCredits)
{
    apply(SignalClass::WriteEnable, 0, -1, 3);
    EXPECT_EQ(wires_.in[0].writeEnable, 0b1000u);
    apply(SignalClass::CreditRecv, 2, -1, 1);
    EXPECT_EQ(wires_.out[2].creditRecv, 0b10u);
}

TEST_F(ApplyFixture, Va2Indexing)
{
    apply(SignalClass::Va2Grant, 3, 2, 17);
    EXPECT_EQ(wires_.out[3].va2Grant[2], 1ULL << 17);
}

TEST_F(ApplyFixture, RcOutPortFieldEncoding)
{
    wires_.in[0].rcOutPort = 1;
    apply(SignalClass::RcOutPort, 0, -1, 2);
    EXPECT_EQ(wires_.in[0].rcOutPort, 5); // 0b001 ^ 0b100
    // A -1 sentinel is encoded as the all-ones field value.
    wires_.in[0].rcOutPort = noc::kInvalidPort;
    apply(SignalClass::RcOutPort, 0, -1, 0);
    EXPECT_EQ(wires_.in[0].rcOutPort, 6); // 0b111 ^ 0b001
}

TEST_F(ApplyFixture, StateRegisterFaults)
{
    noc::VcRecord &rec = router_.vcRecord(2, 1);
    rec.state = noc::VcState::Active; // encoded 3
    apply(SignalClass::StVcState, 2, 1, 0);
    EXPECT_EQ(rec.state, noc::VcState::VcAllocWait); // 3 ^ 1 = 2

    rec.outPort = 1;
    apply(SignalClass::StVcOutPort, 2, 1, 1);
    EXPECT_EQ(rec.outPort, 3);

    rec.outVc = 0;
    apply(SignalClass::StVcOutVc, 2, 1, 1);
    EXPECT_EQ(rec.outVc, 2);
}

TEST_F(ApplyFixture, OutVcStateFaults)
{
    noc::OutVcState &ov = router_.outVcState(1, 0);
    EXPECT_TRUE(ov.free);
    apply(SignalClass::StOutVcFree, 1, 0, 0);
    EXPECT_FALSE(ov.free);

    EXPECT_EQ(ov.credits, 5); // buffer depth
    apply(SignalClass::StCredits, 1, 0, 1);
    EXPECT_EQ(ov.credits, 7);
    apply(SignalClass::StCredits, 1, 0, 2);
    EXPECT_EQ(ov.credits, 3);
}

TEST_F(ApplyFixture, ArbiterPointerFaults)
{
    router_.sa1Arbiter(0).setPointer(1);
    apply(SignalClass::StSa1Pointer, 0, -1, 1);
    EXPECT_EQ(router_.sa1Arbiter(0).pointer(), 3u);
    router_.sa2Arbiter(4).setPointer(0);
    apply(SignalClass::StSa2Pointer, 4, -1, 2);
    EXPECT_EQ(router_.sa2Arbiter(4).pointer(), 4u);
}

TEST_F(ApplyFixture, ScheduleRegisterFaults)
{
    noc::XbarSchedule &sched = router_.schedule(3);
    apply(SignalClass::StSchedValid, 3, -1, 0);
    EXPECT_TRUE(sched.valid);
    apply(SignalClass::StSchedVc, 3, -1, 1);
    EXPECT_EQ(sched.vc, 2);
    apply(SignalClass::StSchedRow, 3, -1, 4);
    EXPECT_EQ(sched.rowMask, 0b10000u);
    apply(SignalClass::StSchedOutVc, 3, -1, 0);
    EXPECT_EQ(sched.outVcWire, 1);
}

TEST(FaultInjector, AppliesOnlyAtMatchingTapAndCycle)
{
    noc::NetworkConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    noc::TrafficSpec traffic;
    traffic.injectionRate = 0.0;
    noc::Network net(cfg, traffic);

    FaultInjector injector;
    FaultSite site{5, SignalClass::Sa1Grant, 0, -1, 0};
    injector.arm({site, 10, FaultKind::Transient});
    injector.attach(net);

    net.run(10);
    EXPECT_EQ(injector.applications(), 0u);
    net.step(); // cycle 10 evaluates now
    EXPECT_EQ(injector.applications(), 1u);
    net.run(10);
    EXPECT_EQ(injector.applications(), 1u);
}

TEST(FaultInjector, PermanentKeepsApplying)
{
    noc::NetworkConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    noc::TrafficSpec traffic;
    traffic.injectionRate = 0.0;
    noc::Network net(cfg, traffic);

    FaultInjector injector;
    injector.arm({{5, SignalClass::StOutVcFree, 0, 0, 0},
                  5,
                  FaultKind::Permanent});
    injector.attach(net);
    net.run(20);
    EXPECT_EQ(injector.applications(), 15u);
    // Stuck-inverted: the bit toggles every cycle relative to the
    // healthy value; with nothing else writing it, it oscillates.
}

TEST(FaultKinds, EveryDurationModelFiresTheSameCheckersAtOnset)
{
    // The same site under transient, permanent, and intermittent
    // duration models: up to the injection cycle the three runs are
    // identical and the first flip is the same, so the very same
    // checkers must assert with the same loci at the onset cycle —
    // duration only changes what happens afterwards.
    struct Observed
    {
        std::vector<core::Assertion> atOnset;
        std::set<core::InvariantId> invariants;
    };
    constexpr noc::Cycle kOnset = 200;
    auto observe = [&](FaultKind kind) {
        noc::NetworkConfig cfg;
        cfg.width = 4;
        cfg.height = 4;
        noc::TrafficSpec traffic;
        traffic.injectionRate = 0.1;
        traffic.seed = 7;
        traffic.stopCycle = 300;
        noc::Network net(cfg, traffic);
        core::NoCAlertEngine engine(net);

        FaultInjector injector;
        FaultSpec spec;
        spec.site = {5, SignalClass::Sa2Grant, 1, -1, 3};
        spec.cycle = kOnset;
        spec.kind = kind;
        if (kind == FaultKind::Intermittent) {
            spec.period = 16;
            spec.duty = 4;
        }
        injector.arm(spec);
        injector.attach(net);
        net.run(300);
        net.drain(2000);

        Observed obs;
        for (const core::Assertion &a : engine.log().alerts()) {
            if (a.cycle == kOnset)
                obs.atOnset.push_back(a);
            obs.invariants.insert(a.id);
        }
        return obs;
    };

    const Observed transient = observe(FaultKind::Transient);
    const Observed permanent = observe(FaultKind::Permanent);
    const Observed intermittent = observe(FaultKind::Intermittent);

    // The flip is detected instantly under every model.
    ASSERT_FALSE(transient.atOnset.empty());

    for (const Observed *other : {&permanent, &intermittent}) {
        ASSERT_EQ(other->atOnset.size(), transient.atOnset.size());
        for (std::size_t i = 0; i < transient.atOnset.size(); ++i) {
            EXPECT_EQ(other->atOnset[i].id, transient.atOnset[i].id);
            EXPECT_EQ(other->atOnset[i].router,
                      transient.atOnset[i].router);
            EXPECT_EQ(other->atOnset[i].port, transient.atOnset[i].port);
            EXPECT_EQ(other->atOnset[i].vc, transient.atOnset[i].vc);
        }
        // Longer-lived faults keep asserting after the onset cycle.
        EXPECT_FALSE(other->invariants.empty());
    }
}

TEST(FaultInjector, MultipleFaultsCanBeArmed)
{
    noc::NetworkConfig cfg;
    cfg.width = 4;
    cfg.height = 4;
    noc::TrafficSpec traffic;
    traffic.injectionRate = 0.0;
    noc::Network net(cfg, traffic);

    FaultInjector injector;
    injector.arm({{3, SignalClass::StCredits, 0, 0, 0},
                  2,
                  FaultKind::Transient});
    injector.arm({{7, SignalClass::StCredits, 0, 0, 0},
                  4,
                  FaultKind::Transient});
    injector.attach(net);
    net.run(10);
    EXPECT_EQ(injector.applications(), 2u);
    EXPECT_EQ(injector.faults().size(), 2u);
    injector.clear();
    EXPECT_TRUE(injector.faults().empty());
}

} // namespace
} // namespace nocalert::fault
