#include "fault/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace nocalert::fault {
namespace {

/** A result whose every field differs from its default. */
CampaignResult
syntheticResult()
{
    CampaignResult result;
    CampaignConfig &config = result.config;
    config.network.width = 3;
    config.network.height = 5;
    config.network.routing = noc::RoutingAlgo::WestFirst;
    config.network.router.numVcs = 6;
    config.network.router.bufferDepth = 9;
    config.network.router.atomicBuffers = false;
    config.network.router.speculative = true;
    config.network.router.flitWidthBits = 64;
    config.network.router.extendedChecks = true;
    config.network.router.classes = {{"req", 2}, {"resp", 7}};
    config.network.retransmit.enabled = true;
    config.network.retransmit.ackTimeout = 450;
    config.network.retransmit.maxRetries = 5;
    config.network.retransmit.backoffCap = 8;
    config.workload.synthetic.pattern = noc::TrafficPattern::Hotspot;
    config.workload.synthetic.injectionRate = 0.031;
    config.workload.synthetic.seed = 99;
    config.workload.synthetic.stopCycle = 4321;
    config.workload.synthetic.classWeights = {0.25, 0.75};
    config.workload.synthetic.hotspot.node = 11;
    config.workload.synthetic.hotspot.fraction = 0.4;
    config.warmup = 777;
    config.observeWindow = 2500;
    config.drainLimit = 9000;
    config.kind = FaultKind::Intermittent;
    config.maxSites = 55;
    config.wireSitesOnly = true;
    config.sampleSeed = 31;
    config.runForever = false;
    config.recovery = true;
    config.forever.epochLength = 640;
    config.forever.hopLatency = 2;
    config.forever.useAllocationComparator = false;
    config.forever.useEndToEnd = false;
    // Execution knobs: set to non-defaults to prove they never reach
    // the serialized artifact (schema v4 drops them).
    config.jobs = 3;
    config.shardIndex = 1;
    config.shardCount = 4;
    config.checkpointPath = "shards/s1.json";
    config.checkpointEvery = 7;

    result.totalSitesEnumerated = 4242;
    result.goldenFlits = 1234;
    result.shardRunsPlanned = 3;

    FaultRunResult detected;
    detected.sampleIndex = 1;
    detected.site = {7, SignalClass::StCredits,
                     noc::portIndex(noc::Port::West), 2, 3};
    detected.injectCycle = 777;
    detected.violated = true;
    detected.violatedConditions = 5;
    detected.drained = false;
    detected.detected = true;
    detected.detectionLatency = 0;
    detected.detectedCautious = true;
    detected.cautiousLatency = 12;
    detected.alertAtInjection = true;
    detected.simultaneousCheckers = 4;
    detected.invariants = {core::InvariantId::GrantWithoutRequest,
                           core::InvariantId::EjectionAtWrongDestination};
    detected.foreverDetected = true;
    detected.foreverLatency = 1400;
    detected.recovered = true;
    detected.recoveryTriggered = true;
    detected.recoveryCycle = 801;
    detected.recoveryActions = 2;
    detected.quarantinedPorts = 3;
    detected.purgedFlits = 17;
    detected.retransmits = 4;
    detected.duplicatesSuppressed = 1;
    detected.packetsAbandoned = 1;
    result.runs.push_back(detected);

    FaultRunResult benign;
    benign.sampleIndex = 5;
    benign.site = {0, SignalClass::Sa1Req,
                   noc::portIndex(noc::Port::Local), 0, 1};
    benign.injectCycle = 778;
    result.runs.push_back(benign);

    return result;
}

void
expectRunsEqual(const FaultRunResult &a, const FaultRunResult &b)
{
    EXPECT_EQ(a.sampleIndex, b.sampleIndex);
    EXPECT_EQ(a.site, b.site);
    EXPECT_EQ(a.injectCycle, b.injectCycle);
    EXPECT_EQ(a.violated, b.violated);
    EXPECT_EQ(a.violatedConditions, b.violatedConditions);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.detected, b.detected);
    EXPECT_EQ(a.detectionLatency, b.detectionLatency);
    EXPECT_EQ(a.detectedCautious, b.detectedCautious);
    EXPECT_EQ(a.cautiousLatency, b.cautiousLatency);
    EXPECT_EQ(a.alertAtInjection, b.alertAtInjection);
    EXPECT_EQ(a.simultaneousCheckers, b.simultaneousCheckers);
    EXPECT_EQ(a.invariants, b.invariants);
    EXPECT_EQ(a.foreverDetected, b.foreverDetected);
    EXPECT_EQ(a.foreverLatency, b.foreverLatency);
    EXPECT_EQ(a.recovered, b.recovered);
    EXPECT_EQ(a.recoveryTriggered, b.recoveryTriggered);
    EXPECT_EQ(a.recoveryCycle, b.recoveryCycle);
    EXPECT_EQ(a.recoveryActions, b.recoveryActions);
    EXPECT_EQ(a.quarantinedPorts, b.quarantinedPorts);
    EXPECT_EQ(a.purgedFlits, b.purgedFlits);
    EXPECT_EQ(a.retransmits, b.retransmits);
    EXPECT_EQ(a.duplicatesSuppressed, b.duplicatesSuppressed);
    EXPECT_EQ(a.packetsAbandoned, b.packetsAbandoned);
}

TEST(Serialize, RoundTripPreservesEveryField)
{
    const CampaignResult original = syntheticResult();
    const std::string text = writeCampaignJson(original);

    std::string error;
    const auto restored = readCampaignJson(text, &error);
    ASSERT_TRUE(restored.has_value()) << error;

    const CampaignConfig &a = original.config;
    const CampaignConfig &b = restored->config;
    EXPECT_EQ(a.network.width, b.network.width);
    EXPECT_EQ(a.network.height, b.network.height);
    EXPECT_EQ(a.network.routing, b.network.routing);
    EXPECT_EQ(a.network.router.numVcs, b.network.router.numVcs);
    EXPECT_EQ(a.network.router.bufferDepth, b.network.router.bufferDepth);
    EXPECT_EQ(a.network.router.atomicBuffers,
              b.network.router.atomicBuffers);
    EXPECT_EQ(a.network.router.speculative, b.network.router.speculative);
    EXPECT_EQ(a.network.router.flitWidthBits,
              b.network.router.flitWidthBits);
    EXPECT_EQ(a.network.router.extendedChecks,
              b.network.router.extendedChecks);
    ASSERT_EQ(a.network.router.classes.size(),
              b.network.router.classes.size());
    for (std::size_t i = 0; i < a.network.router.classes.size(); ++i) {
        EXPECT_EQ(a.network.router.classes[i].name,
                  b.network.router.classes[i].name);
        EXPECT_EQ(a.network.router.classes[i].packetLength,
                  b.network.router.classes[i].packetLength);
    }
    EXPECT_EQ(a.network.retransmit.enabled, b.network.retransmit.enabled);
    EXPECT_EQ(a.network.retransmit.ackTimeout,
              b.network.retransmit.ackTimeout);
    EXPECT_EQ(a.network.retransmit.maxRetries,
              b.network.retransmit.maxRetries);
    EXPECT_EQ(a.network.retransmit.backoffCap,
              b.network.retransmit.backoffCap);
    EXPECT_EQ(a.workload.synthetic.pattern, b.workload.synthetic.pattern);
    EXPECT_EQ(a.workload.synthetic.injectionRate, b.workload.synthetic.injectionRate);
    EXPECT_EQ(a.workload.synthetic.seed, b.workload.synthetic.seed);
    EXPECT_EQ(a.workload.synthetic.stopCycle, b.workload.synthetic.stopCycle);
    EXPECT_EQ(a.workload.synthetic.classWeights, b.workload.synthetic.classWeights);
    EXPECT_EQ(a.workload.synthetic.hotspot.node, b.workload.synthetic.hotspot.node);
    EXPECT_EQ(a.workload.synthetic.hotspot.fraction, b.workload.synthetic.hotspot.fraction);
    EXPECT_EQ(a.warmup, b.warmup);
    EXPECT_EQ(a.observeWindow, b.observeWindow);
    EXPECT_EQ(a.drainLimit, b.drainLimit);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.maxSites, b.maxSites);
    EXPECT_EQ(a.wireSitesOnly, b.wireSitesOnly);
    EXPECT_EQ(a.sampleSeed, b.sampleSeed);
    EXPECT_EQ(a.runForever, b.runForever);
    EXPECT_EQ(a.recovery, b.recovery);
    EXPECT_EQ(a.forever.epochLength, b.forever.epochLength);
    EXPECT_EQ(a.forever.hopLatency, b.forever.hopLatency);
    EXPECT_EQ(a.forever.useAllocationComparator,
              b.forever.useAllocationComparator);
    EXPECT_EQ(a.forever.useEndToEnd, b.forever.useEndToEnd);
    EXPECT_EQ(a.shardIndex, b.shardIndex);
    EXPECT_EQ(a.shardCount, b.shardCount);
    // Pure execution knobs are not serialized (schema v4): a restored
    // config carries their defaults, whatever the writer used.
    EXPECT_EQ(b.jobs, 1u);
    EXPECT_TRUE(b.checkpointPath.empty());
    EXPECT_EQ(b.checkpointEvery, 25u);

    EXPECT_EQ(original.totalSitesEnumerated,
              restored->totalSitesEnumerated);
    EXPECT_EQ(original.goldenFlits, restored->goldenFlits);
    EXPECT_EQ(original.shardRunsPlanned, restored->shardRunsPlanned);
    ASSERT_EQ(original.runs.size(), restored->runs.size());
    for (std::size_t i = 0; i < original.runs.size(); ++i)
        expectRunsEqual(original.runs[i], restored->runs[i]);

    // Serialization is deterministic: re-writing the parsed result
    // reproduces the document byte for byte.
    EXPECT_EQ(writeCampaignJson(*restored), text);
}

TEST(Serialize, RejectsMismatchedSchemaVersion)
{
    JsonValue json = toJson(syntheticResult());
    json.set("version", kCampaignSchemaVersion + 1);
    std::string error;
    EXPECT_FALSE(campaignResultFromJson(json, &error).has_value());
    EXPECT_NE(error.find("version"), std::string::npos);

    json.set("version", kCampaignSchemaVersion);
    json.set("schema", "something-else");
    error.clear();
    EXPECT_FALSE(campaignResultFromJson(json, &error).has_value());
    EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(Serialize, RejectsMalformedDocuments)
{
    std::string error;
    EXPECT_FALSE(readCampaignJson("{not json", &error).has_value());
    EXPECT_FALSE(error.empty());

    // Wrong field type.
    JsonValue json = toJson(syntheticResult());
    json.set("goldenFlits", "lots");
    EXPECT_FALSE(campaignResultFromJson(json).has_value());

    // Unknown enum name.
    CampaignResult bad_enum = syntheticResult();
    JsonValue doc = toJson(bad_enum);
    // Dig out config.kind and corrupt it.
    JsonValue config = *doc.find("config");
    config.set("kind", "cosmic-ray");
    doc.set("config", std::move(config));
    error.clear();
    EXPECT_FALSE(campaignResultFromJson(doc, &error).has_value());
    EXPECT_NE(error.find("cosmic-ray"), std::string::npos);

    // Latency inconsistent with the detection flag.
    CampaignResult bad_latency = syntheticResult();
    bad_latency.runs[1].detectionLatency = 5; // but detected == false
    EXPECT_FALSE(
        campaignResultFromJson(toJson(bad_latency), &error).has_value());
}

TEST(Serialize, RecoveryFieldsAreValidated)
{
    // recovered on an undetected run is impossible by construction.
    CampaignResult bad = syntheticResult();
    bad.runs[1].recovered = true; // detected == false
    std::string error;
    EXPECT_FALSE(campaignResultFromJson(toJson(bad), &error).has_value());
    EXPECT_NE(error.find("recovered"), std::string::npos);

    // A recovery cycle without a trigger is inconsistent.
    CampaignResult bad_cycle = syntheticResult();
    bad_cycle.runs[1].recoveryCycle = 5; // recoveryTriggered == false
    error.clear();
    EXPECT_FALSE(
        campaignResultFromJson(toJson(bad_cycle), &error).has_value());
    EXPECT_NE(error.find("recoveryCycle"), std::string::npos);
}

TEST(Serialize, TelemetryBlockIsValidatedAgainstRuns)
{
    // The telemetry block is a deterministic projection of the runs;
    // a document whose block disagrees with its own runs is corrupt.
    JsonValue doc = toJson(syntheticResult());
    JsonValue telemetry = *doc.find("telemetry");
    telemetry.set("runsCompleted", 99);
    doc.set("telemetry", std::move(telemetry));
    std::string error;
    EXPECT_FALSE(campaignResultFromJson(doc, &error).has_value());
    EXPECT_NE(error.find("telemetry"), std::string::npos) << error;

    // A wrong outcome count is caught too, not just the totals.
    JsonValue doc2 = toJson(syntheticResult());
    JsonValue telemetry2 = *doc2.find("telemetry");
    JsonValue outcomes(JsonValue::Array{});
    for (std::size_t i = 0; i < kNumOutcomes; ++i)
        outcomes.push(0);
    telemetry2.set("outcomes", std::move(outcomes));
    doc2.set("telemetry", std::move(telemetry2));
    error.clear();
    EXPECT_FALSE(campaignResultFromJson(doc2, &error).has_value());
    EXPECT_NE(error.find("telemetry"), std::string::npos) << error;
}

TEST(Serialize, IdentityExcludesExecutionKnobs)
{
    CampaignConfig a;
    CampaignConfig b;
    b.jobs = 16;
    b.shardIndex = 2;
    b.shardCount = 8;
    b.checkpointPath = "elsewhere.json";
    b.checkpointEvery = 1;
    EXPECT_EQ(campaignIdentityJson(a), campaignIdentityJson(b));

    b.sampleSeed += 1;
    EXPECT_NE(campaignIdentityJson(a), campaignIdentityJson(b));

    // The recovery switch changes what a run measures, so it is part
    // of the campaign identity (a checkpoint written with recovery off
    // must not resume a --recovery shard).
    CampaignConfig c;
    CampaignConfig d;
    d.recovery = true;
    EXPECT_NE(campaignIdentityJson(c), campaignIdentityJson(d));
}

// ---- Artifact identity hash (the result cache's key domain) ----

TEST(Serialize, NormalizedConfigPinsDerivedKnobs)
{
    CampaignConfig config;
    config.warmup = 150;
    config.observeWindow = 900;
    config.workload.synthetic.stopCycle = 0; // Whatever the caller left here.
    const CampaignConfig normal = normalizedCampaignConfig(config);
    EXPECT_EQ(normal.workload.synthetic.stopCycle, 150 + 900);

    CampaignConfig recovery_config;
    recovery_config.recovery = true;
    const CampaignConfig recovered =
        normalizedCampaignConfig(recovery_config);
    EXPECT_TRUE(recovered.network.retransmit.enabled);
    EXPECT_EQ(recovered.network.routing, noc::RoutingAlgo::QAdaptive);
    EXPECT_FALSE(recovered.runForever);
}

TEST(Serialize, NormalizationIsIdempotent)
{
    CampaignConfig config;
    config.recovery = true;
    config.warmup = 100;
    const CampaignConfig once = normalizedCampaignConfig(config);
    const CampaignConfig twice = normalizedCampaignConfig(once);
    EXPECT_EQ(toJson(once).dump(), toJson(twice).dump());
}

TEST(Serialize, ArtifactHashIgnoresExecutionKnobs)
{
    CampaignConfig a;
    CampaignConfig b;
    b.jobs = 16;
    b.checkpointPath = "elsewhere.json";
    b.checkpointEvery = 1;
    // Artifacts are byte-identical across execution knobs, so specs
    // differing only there must share one cache slot.
    EXPECT_EQ(campaignArtifactHash(a), campaignArtifactHash(b));

    const std::string hash = campaignArtifactHash(a);
    EXPECT_EQ(hash.size(), 16u);
    EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"),
              std::string::npos)
        << hash;
}

TEST(Serialize, ArtifactHashSeparatesIdentityShardAndKernel)
{
    CampaignConfig base;
    // Campaign identity differences must split the key...
    CampaignConfig other_seed = base;
    other_seed.workload.synthetic.seed += 1;
    EXPECT_NE(campaignArtifactHash(base),
              campaignArtifactHash(other_seed));

    // ...and so must the shard selector and the kernel choice: both
    // are serialized into the artifact's config block, so two such
    // documents are not byte-interchangeable even though they describe
    // the same campaign identity.
    CampaignConfig shard = base;
    shard.shardIndex = 1;
    shard.shardCount = 2;
    EXPECT_NE(campaignArtifactHash(base), campaignArtifactHash(shard));

    CampaignConfig dense = base;
    dense.denseKernel = true;
    EXPECT_NE(campaignArtifactHash(base), campaignArtifactHash(dense));
}

TEST(Serialize, ArtifactHashOfSpecMatchesFinishedArtifact)
{
    // The cache-correctness invariant end to end: the hash of the
    // *submitted* spec (pre-normalization, derived knobs unset) must
    // equal the hash of the config block a finished artifact records
    // (post-constructor normalization) — otherwise a cache keyed on
    // submission hashes could never find the artifacts it stored.
    CampaignConfig spec;
    spec.network.width = 4;
    spec.network.height = 4;
    spec.workload.synthetic.injectionRate = 0.05;
    spec.workload.synthetic.seed = 13;
    spec.workload.synthetic.stopCycle = 0;
    spec.warmup = 150;
    spec.observeWindow = 500;
    spec.drainLimit = 2500;
    spec.maxSites = 2;
    spec.runForever = false;
    const std::string submitted = campaignArtifactHash(spec);

    const CampaignResult result = FaultCampaign(spec).run();
    ASSERT_TRUE(result.complete());
    EXPECT_EQ(submitted, campaignArtifactHash(result.config));

    // And re-parsing the artifact keeps the key stable.
    const auto reread = readCampaignJson(writeCampaignJson(result));
    ASSERT_TRUE(reread.has_value());
    EXPECT_EQ(submitted, campaignArtifactHash(reread->config));
}

// ---- End-to-end sharding, checkpointing, and merge ----

CampaignConfig
tinyCampaign()
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 13;
    config.warmup = 200;
    config.observeWindow = 1200;
    config.drainLimit = 4000;
    config.maxSites = 16;
    config.forever.epochLength = 400;
    return config;
}

TEST(Sharding, MergedShardsAreBitIdenticalToUnshardedRun)
{
    const CampaignResult whole = FaultCampaign(tinyCampaign()).run();
    ASSERT_TRUE(whole.complete());

    std::vector<CampaignResult> shards;
    for (unsigned i = 0; i < 2; ++i) {
        CampaignConfig config = tinyCampaign();
        config.shardIndex = i;
        config.shardCount = 2;
        // Jobs count must not matter for the merged outcome.
        config.jobs = i + 1;
        shards.push_back(FaultCampaign(config).run());
        ASSERT_TRUE(shards.back().complete());
        EXPECT_LT(shards.back().runs.size(), whole.runs.size());
    }

    std::string error;
    auto merged = mergeCampaignShards(shards, &error);
    ASSERT_TRUE(merged.has_value()) << error;

    // The merged document matches the single-process run exactly —
    // same runs in the same order, a bit-identical summary, and
    // byte-identical JSON (execution knobs never reach the artifact,
    // so no alignment is needed).
    ASSERT_EQ(merged->runs.size(), whole.runs.size());
    for (std::size_t i = 0; i < whole.runs.size(); ++i)
        expectRunsEqual(merged->runs[i], whole.runs[i]);
    EXPECT_EQ(toJson(merged->summarize()).dump(),
              toJson(whole.summarize()).dump());
    EXPECT_EQ(writeCampaignJson(*merged), writeCampaignJson(whole));
}

TEST(Sharding, MergeRejectsBadShardSets)
{
    CampaignConfig config = tinyCampaign();
    config.maxSites = 6;
    config.shardCount = 2;
    config.shardIndex = 0;
    const CampaignResult shard0 = FaultCampaign(config).run();

    std::string error;
    // Missing shard 1.
    EXPECT_FALSE(mergeCampaignShards({&shard0, 1}, &error).has_value());
    EXPECT_NE(error.find("expected 2 shards"), std::string::npos);

    // Duplicate shard 0.
    std::vector<CampaignResult> dup = {shard0, shard0};
    EXPECT_FALSE(mergeCampaignShards(dup, &error).has_value());
    EXPECT_NE(error.find("duplicate"), std::string::npos);

    // Identity mismatch.
    config.shardIndex = 1;
    config.sampleSeed += 1;
    std::vector<CampaignResult> mixed = {shard0,
                                         FaultCampaign(config).run()};
    EXPECT_FALSE(mergeCampaignShards(mixed, &error).has_value());
    EXPECT_NE(error.find("different campaign"), std::string::npos);

    // Incomplete shard.
    std::vector<CampaignResult> partial = {shard0, shard0};
    partial[1].config.shardIndex = 1;
    partial[1].runs.clear();
    EXPECT_FALSE(mergeCampaignShards(partial, &error).has_value());
    EXPECT_NE(error.find("incomplete"), std::string::npos);
}

TEST(Sharding, InterruptedShardResumesFromCheckpoint)
{
    const std::string checkpoint =
        testing::TempDir() + "nocalert_resume_checkpoint.json";
    std::remove(checkpoint.c_str());

    CampaignConfig config = tinyCampaign();
    config.maxSites = 8;
    config.checkpointPath = checkpoint;
    config.checkpointEvery = 1;

    // Reference: the same shard in one uninterrupted pass.
    CampaignConfig plain = config;
    plain.checkpointPath.clear();
    const CampaignResult whole = FaultCampaign(plain).run();

    // First pass "killed" after 3 runs: checkpoint survives.
    FaultCampaign::RunOptions options;
    options.maxNewRuns = 3;
    const CampaignResult partial =
        FaultCampaign(config).run(nullptr, options);
    EXPECT_FALSE(partial.complete());
    EXPECT_EQ(partial.runs.size(), 3u);

    // Second pass resumes: only the remaining runs execute.
    std::size_t executed = 0;
    std::size_t total_seen = 0;
    const CampaignResult resumed = FaultCampaign(config).run(
        [&](std::size_t, std::size_t total) {
            ++executed;
            total_seen = total;
        });
    EXPECT_TRUE(resumed.complete());
    EXPECT_EQ(executed, whole.runs.size() - 3);
    EXPECT_EQ(total_seen, whole.runs.size());

    // The resumed result is exactly the uninterrupted one (modulo the
    // checkpoint path execution knob).
    ASSERT_EQ(resumed.runs.size(), whole.runs.size());
    for (std::size_t i = 0; i < whole.runs.size(); ++i)
        expectRunsEqual(resumed.runs[i], whole.runs[i]);
    EXPECT_EQ(toJson(resumed.summarize()).dump(),
              toJson(whole.summarize()).dump());

    // The checkpoint file itself is the finished shard.
    std::string error;
    const auto from_disk = loadCampaignResult(checkpoint, &error);
    ASSERT_TRUE(from_disk.has_value()) << error;
    EXPECT_TRUE(from_disk->complete());
    std::remove(checkpoint.c_str());
}

TEST(Sharding, CorruptCheckpointReportsPathAndOffset)
{
    const std::string checkpoint =
        testing::TempDir() + "nocalert_corrupt_checkpoint.json";
    // A prefix of a real document: what a crash or a full disk leaves
    // behind mid-write.
    const std::string full = writeCampaignJson(syntheticResult());
    {
        std::FILE *f = std::fopen(checkpoint.c_str(), "w");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fwrite(full.data(), 1, full.size() / 2, f),
                  full.size() / 2);
        std::fclose(f);
    }

    std::string error;
    EXPECT_FALSE(loadCampaignResult(checkpoint, &error).has_value());
    // The error names the offending file and the byte offset of the
    // parse failure, so a truncated checkpoint is diagnosable instead
    // of a crash or a silent restart.
    EXPECT_NE(error.find(checkpoint), std::string::npos) << error;
    EXPECT_NE(error.find("offset"), std::string::npos) << error;
    std::remove(checkpoint.c_str());
}

TEST(Sharding, CheckpointFromDifferentCampaignIsFatal)
{
    const std::string checkpoint =
        testing::TempDir() + "nocalert_foreign_checkpoint.json";

    CampaignConfig config = tinyCampaign();
    config.maxSites = 4;
    config.checkpointPath = checkpoint;
    FaultCampaign(config).run();

    config.sampleSeed += 1; // now a different campaign
    EXPECT_DEATH(FaultCampaign(config).run(), "different campaign");
    std::remove(checkpoint.c_str());
}

} // namespace
} // namespace nocalert::fault
