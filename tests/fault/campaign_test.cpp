#include "fault/campaign.hpp"

#include <gtest/gtest.h>

namespace nocalert::fault {
namespace {

CampaignConfig
smallCampaign(unsigned sites = 24)
{
    CampaignConfig config;
    config.network.width = 4;
    config.network.height = 4;
    config.workload.synthetic.injectionRate = 0.05;
    config.workload.synthetic.seed = 13;
    config.warmup = 200;
    config.observeWindow = 1200;
    config.drainLimit = 4000;
    config.maxSites = sites;
    config.forever.epochLength = 400;
    return config;
}

TEST(Outcomes, ClassificationMatrix)
{
    FaultRunResult run;
    run.detected = true;
    run.violated = true;
    EXPECT_EQ(run.outcome(), Outcome::TruePositive);
    run.violated = false;
    EXPECT_EQ(run.outcome(), Outcome::FalsePositive);
    run.detected = false;
    EXPECT_EQ(run.outcome(), Outcome::TrueNegative);
    run.violated = true;
    EXPECT_EQ(run.outcome(), Outcome::FalseNegative);
    EXPECT_STREQ(outcomeName(Outcome::TruePositive), "true-positive");

    // A recovered run outranks the detection matrix.
    run.detected = true;
    run.violated = false;
    run.recovered = true;
    EXPECT_EQ(run.outcome(), Outcome::DetectedRecovered);
    EXPECT_STREQ(outcomeName(Outcome::DetectedRecovered),
                 "detected-recovered");
}

TEST(Campaign, SmallCampaignEndToEnd)
{
    FaultCampaign campaign(smallCampaign());
    std::size_t progress_calls = 0;
    const CampaignResult result = campaign.run(
        [&](std::size_t done, std::size_t total) {
            ++progress_calls;
            EXPECT_LE(done, total);
        });

    EXPECT_EQ(result.runs.size(), 24u);
    EXPECT_EQ(progress_calls, 24u);
    EXPECT_GT(result.goldenFlits, 100u);
    EXPECT_GT(result.totalSitesEnumerated, 1000u);

    const CampaignSummary summary = result.summarize();
    EXPECT_EQ(summary.runs, 24u);

    // The paper's headline: zero false negatives for NoCAlert.
    EXPECT_EQ(summary.nocalert[static_cast<unsigned>(
                  Outcome::FalseNegative)],
              0u);
    // Observation 5: faults with no same-cycle alert and no later
    // alert never violate correctness.
    EXPECT_EQ(summary.noInstantViolatedUndetected, 0u);

    // The four outcomes partition the runs.
    std::uint64_t total = 0;
    for (std::uint64_t c : summary.nocalert)
        total += c;
    EXPECT_EQ(total, summary.runs);
}

TEST(Campaign, ResultsAreReproducible)
{
    FaultCampaign a(smallCampaign(10));
    FaultCampaign b(smallCampaign(10));
    const auto ra = a.run();
    const auto rb = b.run();
    ASSERT_EQ(ra.runs.size(), rb.runs.size());
    for (std::size_t i = 0; i < ra.runs.size(); ++i) {
        EXPECT_EQ(ra.runs[i].site, rb.runs[i].site);
        EXPECT_EQ(ra.runs[i].detected, rb.runs[i].detected);
        EXPECT_EQ(ra.runs[i].violated, rb.runs[i].violated);
        EXPECT_EQ(ra.runs[i].detectionLatency,
                  rb.runs[i].detectionLatency);
        EXPECT_EQ(ra.runs[i].foreverDetected, rb.runs[i].foreverDetected);
    }
}

TEST(Campaign, DetectionLatencyOnlyForDetectedRuns)
{
    FaultCampaign campaign(smallCampaign());
    const CampaignResult result = campaign.run();
    for (const FaultRunResult &run : result.runs) {
        if (run.detected) {
            EXPECT_GE(run.detectionLatency, 0);
            EXPECT_GE(run.simultaneousCheckers, 1u);
            EXPECT_FALSE(run.invariants.empty());
        } else {
            EXPECT_EQ(run.detectionLatency, kNoDetection);
            EXPECT_TRUE(run.invariants.empty());
        }
        if (run.detectedCautious) {
            EXPECT_TRUE(run.detected);
        }
        if (run.alertAtInjection) {
            EXPECT_TRUE(run.detected);
            EXPECT_EQ(run.detectionLatency, 0);
        }
    }
}

TEST(Campaign, CautiousNeverAddsFalseNegativesBeyondLowRisk)
{
    FaultCampaign campaign(smallCampaign(30));
    const auto summary = campaign.run().summarize();
    // Cautious mode may convert low-risk-only FPs into TNs but must
    // never lose a true positive (Observation 2: invariants 1/3 alone
    // are benign).
    EXPECT_EQ(summary.cautious[static_cast<unsigned>(
                  Outcome::FalseNegative)],
              0u);
    EXPECT_LE(summary.cautious[static_cast<unsigned>(
                  Outcome::FalsePositive)],
              summary.nocalert[static_cast<unsigned>(
                  Outcome::FalsePositive)]);
}

TEST(Campaign, RunSingleBuildingBlock)
{
    CampaignConfig config = smallCampaign();
    config.workload.synthetic.stopCycle = config.warmup + config.observeWindow;

    noc::Network base(config.network, config.workload);
    base.run(config.warmup);

    noc::Network golden(base);
    golden.run(config.observeWindow);
    ASSERT_TRUE(golden.drain(config.drainLimit));
    const GoldenReference reference(golden.collectEjections());

    FaultSite site;
    site.router = 5;
    site.signal = SignalClass::Sa2Grant;
    site.port = noc::portIndex(noc::Port::East);
    site.bit = 0;

    const FaultRunResult run =
        FaultCampaign::runSingle(config, base, reference, site);
    EXPECT_EQ(run.injectCycle, config.warmup);
    EXPECT_EQ(run.site, site);
    // Either detected or benign — never a silent violation.
    if (!run.detected) {
        EXPECT_FALSE(run.violated);
    }
}

TEST(Campaign, WireSitesOnlyExcludesRegisters)
{
    CampaignConfig config = smallCampaign(20);
    config.wireSitesOnly = true;
    const auto result = FaultCampaign(config).run();
    EXPECT_GT(result.totalSitesEnumerated, 100u);
    for (const FaultRunResult &run : result.runs)
        EXPECT_FALSE(isStateSignal(run.site.signal))
            << run.site.describe();
}

TEST(Campaign, RecoveryModeClassifiesRecoveredRuns)
{
    CampaignConfig config = smallCampaign();
    config.kind = FaultKind::Permanent;
    config.recovery = true;
    config.drainLimit = 12000; // room for the full retry/backoff chain

    FaultCampaign campaign(config);
    const CampaignResult result = campaign.run();

    // The recovery switch forces the full stack on: retransmission,
    // quarantine-aware routing, and no ForEVeR epochs.
    EXPECT_TRUE(result.config.network.retransmit.enabled);
    EXPECT_EQ(result.config.network.routing, noc::RoutingAlgo::QAdaptive);
    EXPECT_FALSE(result.config.runForever);

    const CampaignSummary summary = result.summarize();
    EXPECT_GE(summary.nocalert[static_cast<unsigned>(
                  Outcome::DetectedRecovered)],
              1u);

    // The five outcomes still partition the runs.
    std::uint64_t total = 0;
    for (std::uint64_t c : summary.nocalert)
        total += c;
    EXPECT_EQ(total, summary.runs);

    for (const FaultRunResult &run : result.runs) {
        if (run.recovered) {
            EXPECT_TRUE(run.detected);
            EXPECT_FALSE(run.violated);
            EXPECT_TRUE(run.drained);
            EXPECT_TRUE(run.recoveryTriggered || run.retransmits > 0);
        }
        if (run.recoveryTriggered) {
            EXPECT_NE(run.recoveryCycle, kNoDetection);
            EXPECT_GE(run.recoveryCycle, run.injectCycle);
            EXPECT_GE(run.recoveryActions, 1u);
        } else {
            EXPECT_EQ(run.recoveryCycle, kNoDetection);
            EXPECT_EQ(run.recoveryActions, 0u);
        }
    }
}

TEST(Campaign, RecoveryDisabledKeepsSchemaV2Classification)
{
    CampaignConfig config = smallCampaign();
    config.kind = FaultKind::Permanent;
    const CampaignResult result = FaultCampaign(config).run();
    for (const FaultRunResult &run : result.runs) {
        EXPECT_FALSE(run.recovered);
        EXPECT_FALSE(run.recoveryTriggered);
        EXPECT_EQ(run.recoveryCycle, kNoDetection);
        EXPECT_EQ(run.recoveryActions, 0u);
        EXPECT_EQ(run.retransmits, 0u);
        EXPECT_EQ(run.duplicatesSuppressed, 0u);
        EXPECT_EQ(run.packetsAbandoned, 0u);
        EXPECT_NE(run.outcome(), Outcome::DetectedRecovered);
    }
    EXPECT_EQ(result.summarize().nocalert[static_cast<unsigned>(
                  Outcome::DetectedRecovered)],
              0u);
}

TEST(Campaign, ForeverCanBeDisabled)
{
    CampaignConfig config = smallCampaign(8);
    config.runForever = false;
    const auto result = FaultCampaign(config).run();
    for (const FaultRunResult &run : result.runs) {
        EXPECT_FALSE(run.foreverDetected);
        EXPECT_EQ(run.foreverLatency, kNoDetection);
    }
}

} // namespace
} // namespace nocalert::fault
