#include "fault/golden.hpp"

#include <gtest/gtest.h>

namespace nocalert::fault {
namespace {

noc::EjectionRecord
rec(noc::PacketId pkt, std::uint16_t seq, noc::NodeId node,
    noc::Cycle cycle)
{
    noc::EjectionRecord record;
    record.cycle = cycle;
    record.node = node;
    record.flit.packet = pkt;
    record.flit.seq = seq;
    record.flit.dst = node;
    return record;
}

std::vector<noc::EjectionRecord>
goldenLog()
{
    return {rec(1, 0, 5, 10), rec(1, 1, 5, 11), rec(1, 2, 5, 12),
            rec(2, 0, 7, 20)};
}

TEST(GoldenReference, IdenticalLogIsClean)
{
    GoldenReference golden(goldenLog());
    EXPECT_EQ(golden.flitCount(), 4u);
    const auto cmp = golden.compare(goldenLog(), /*drained=*/true);
    EXPECT_FALSE(cmp.violated());
    EXPECT_EQ(cmp.conditions(), 0);
}

TEST(GoldenReference, TimingShiftsAreBenign)
{
    GoldenReference golden(goldenLog());
    auto late = goldenLog();
    for (auto &record : late)
        record.cycle += 500; // slower delivery is not a violation
    EXPECT_FALSE(golden.compare(late, true).violated());
}

TEST(GoldenReference, MissingFlitIsDrop)
{
    GoldenReference golden(goldenLog());
    auto faulty = goldenLog();
    faulty.erase(faulty.begin() + 1); // lose pkt 1 seq 1
    const auto cmp = golden.compare(faulty, true);
    ASSERT_TRUE(cmp.violated());
    EXPECT_EQ(cmp.violations[0].type, GoldenViolation::Type::FlitLost);
    EXPECT_EQ(cmp.violations[0].packet, 1u);
    EXPECT_EQ(cmp.violations[0].seq, 1);
    EXPECT_TRUE(cmp.conditions() & core::kNoFlitDrop);
}

TEST(GoldenReference, UnknownFlitIsNew)
{
    GoldenReference golden(goldenLog());
    auto faulty = goldenLog();
    faulty.push_back(rec(9, 0, 3, 30)); // never created in golden
    const auto cmp = golden.compare(faulty, true);
    ASSERT_TRUE(cmp.violated());
    EXPECT_EQ(cmp.violations[0].type, GoldenViolation::Type::NewFlit);
    EXPECT_TRUE(cmp.conditions() & core::kNoNewFlitGeneration);
}

TEST(GoldenReference, DuplicateFlitIsNew)
{
    GoldenReference golden(goldenLog());
    auto faulty = goldenLog();
    faulty.push_back(rec(2, 0, 7, 25));
    const auto cmp = golden.compare(faulty, true);
    ASSERT_TRUE(cmp.violated());
    EXPECT_EQ(cmp.violations[0].type, GoldenViolation::Type::NewFlit);
}

TEST(GoldenReference, WrongNodeIsMisdelivery)
{
    GoldenReference golden(goldenLog());
    auto faulty = goldenLog();
    faulty[3].node = 8; // pkt 2 ejected at node 8 instead of 7
    const auto cmp = golden.compare(faulty, true);
    ASSERT_TRUE(cmp.violated());
    bool wrong_dest = false;
    for (const auto &v : cmp.violations)
        wrong_dest |= v.type == GoldenViolation::Type::WrongDestination;
    EXPECT_TRUE(wrong_dest);
    EXPECT_TRUE(cmp.conditions() & core::kNoCorruptionOrMixing);
}

TEST(GoldenReference, ReorderIsOrderViolation)
{
    GoldenReference golden(goldenLog());
    std::vector<noc::EjectionRecord> faulty = {
        rec(1, 0, 5, 10), rec(1, 2, 5, 11), rec(1, 1, 5, 12),
        rec(2, 0, 7, 20)};
    const auto cmp = golden.compare(faulty, true);
    ASSERT_TRUE(cmp.violated());
    bool order = false;
    for (const auto &v : cmp.violations)
        order |= v.type == GoldenViolation::Type::OrderViolation;
    EXPECT_TRUE(order);
}

TEST(GoldenReference, NotDrainedIsBoundedDeliveryViolation)
{
    GoldenReference golden(goldenLog());
    const auto cmp = golden.compare(goldenLog(), /*drained=*/false);
    ASSERT_TRUE(cmp.violated());
    EXPECT_EQ(cmp.violations[0].type, GoldenViolation::Type::NotDrained);
    EXPECT_TRUE(cmp.conditions() & core::kBoundedDelivery);
}

TEST(GoldenReference, MultipleViolationsAccumulate)
{
    GoldenReference golden(goldenLog());
    std::vector<noc::EjectionRecord> faulty = {
        rec(1, 0, 5, 10), // seq 1, 2 lost
        rec(9, 0, 3, 15), // new
    };
    const auto cmp = golden.compare(faulty, false);
    EXPECT_GE(cmp.violations.size(), 4u);
    const std::uint8_t conditions = cmp.conditions();
    EXPECT_TRUE(conditions & core::kNoFlitDrop);
    EXPECT_TRUE(conditions & core::kNoNewFlitGeneration);
    EXPECT_TRUE(conditions & core::kBoundedDelivery);
}

TEST(GoldenReference, DescribeIsReadable)
{
    GoldenViolation v{GoldenViolation::Type::FlitLost, 12, 3, 4};
    const std::string text = v.describe();
    EXPECT_NE(text.find("flit-lost"), std::string::npos);
    EXPECT_NE(text.find("pkt=12"), std::string::npos);
}

TEST(GoldenReference, DuplicateGoldenEjectionIsAnInternalBug)
{
    auto bad = goldenLog();
    bad.push_back(bad.front());
    EXPECT_DEATH(GoldenReference{bad}, "ejected flit twice");
}

} // namespace
} // namespace nocalert::fault
