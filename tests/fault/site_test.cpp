#include "fault/site.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace nocalert::fault {
namespace {

noc::NetworkConfig
mesh(int w = 8, int h = 8)
{
    noc::NetworkConfig config;
    config.width = w;
    config.height = h;
    return config;
}

TEST(FaultSites, EveryClassHasTapAndName)
{
    for (int c = 0; c <= static_cast<int>(SignalClass::StSchedOutVc);
         ++c) {
        const auto cls = static_cast<SignalClass>(c);
        EXPECT_STRNE(signalClassName(cls), "?");
        // Tap lookup must not crash and state signals go to CycleStart.
        const noc::TapPoint tap = signalTapPoint(cls);
        if (isStateSignal(cls))
            EXPECT_EQ(tap, noc::TapPoint::CycleStart);
        else
            EXPECT_NE(tap, noc::TapPoint::CycleStart);
    }
}

TEST(FaultSites, CenterRouterHasMoreSitesThanCorner)
{
    const auto cfg = mesh();
    const auto corner = FaultSiteCatalog::enumerateRouter(cfg, 0);
    const auto center =
        FaultSiteCatalog::enumerateRouter(cfg, cfg.nodeAt({4, 4}));
    EXPECT_GT(center.size(), corner.size());
    // A corner router has 3 connected ports vs 5 at the center.
    EXPECT_NEAR(static_cast<double>(corner.size()) / center.size(),
                3.0 / 5.0, 0.15);
}

TEST(FaultSites, CornerSitesOnlyUseConnectedPorts)
{
    const auto cfg = mesh();
    // Node 0 = (0,0): South and West are disconnected.
    for (const FaultSite &site : FaultSiteCatalog::enumerateRouter(cfg, 0))
        EXPECT_TRUE(cfg.portConnected(0, site.port)) << site.describe();
}

TEST(FaultSites, NetworkEnumerationCoversAllRouters)
{
    const auto cfg = mesh(4, 4);
    const auto sites = FaultSiteCatalog::enumerateNetwork(cfg);
    std::set<noc::NodeId> routers;
    for (const FaultSite &site : sites)
        routers.insert(site.router);
    EXPECT_EQ(routers.size(), 16u);
}

TEST(FaultSites, PaperScaleCount)
{
    // The paper reports 205 locations per full 5-port router and
    // 11,808 across the 8x8 mesh; our enumeration is finer-grained
    // (more signal classes) but must be of the same order.
    const auto cfg = mesh();
    const auto center =
        FaultSiteCatalog::enumerateRouter(cfg, cfg.nodeAt({4, 4}));
    EXPECT_GT(center.size(), 205u);
    EXPECT_LT(center.size(), 205u * 10);
}

TEST(FaultSites, SampleIsDeterministic)
{
    const auto cfg = mesh(4, 4);
    const auto a = FaultSiteCatalog::sampleNetwork(cfg, 50, 9);
    const auto b = FaultSiteCatalog::sampleNetwork(cfg, 50, 9);
    ASSERT_EQ(a.size(), 50u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(FaultSites, SampleIsStratifiedAcrossClasses)
{
    const auto cfg = mesh(4, 4);
    const auto sample = FaultSiteCatalog::sampleNetwork(cfg, 100, 1);
    std::map<SignalClass, int> per_class;
    for (const FaultSite &site : sample)
        ++per_class[site.signal];
    // Every signal class present in the full enumeration must appear.
    std::set<SignalClass> all_classes;
    for (const FaultSite &site : FaultSiteCatalog::enumerateNetwork(cfg))
        all_classes.insert(site.signal);
    EXPECT_EQ(per_class.size(), all_classes.size());
}

TEST(FaultSites, SampleZeroMeansAll)
{
    const auto cfg = mesh(4, 4);
    EXPECT_EQ(FaultSiteCatalog::sampleNetwork(cfg, 0, 1).size(),
              FaultSiteCatalog::enumerateNetwork(cfg).size());
}

TEST(FaultSites, DescribeIsInformative)
{
    FaultSite site{12, SignalClass::Sa1Grant, 1, -1, 2};
    const std::string text = site.describe();
    EXPECT_NE(text.find("r12"), std::string::npos);
    EXPECT_NE(text.find("Sa1Grant"), std::string::npos);
    EXPECT_NE(text.find("bit=2"), std::string::npos);
}

TEST(FaultSites, NoVaSitesWithSingleVc)
{
    auto cfg = mesh(4, 4);
    cfg.router.numVcs = 1;
    cfg.router.classes = {{"data", 5}};
    for (const FaultSite &site : FaultSiteCatalog::enumerateNetwork(cfg)) {
        EXPECT_NE(site.signal, SignalClass::Va2Req) << site.describe();
        EXPECT_NE(site.signal, SignalClass::Va2Grant) << site.describe();
        EXPECT_NE(site.signal, SignalClass::Va1Candidate)
            << site.describe();
    }
}

} // namespace
} // namespace nocalert::fault
