/**
 * @file
 * Unit tests of the alert matrix: the packed-violation-code to
 * InvariantId mapping, the per-invariant mask bits, and the expansion
 * of a packed cycle event into the branchy bank's Assertion stream.
 */

#include <gtest/gtest.h>

#include "core/alert_matrix.hpp"

namespace nocalert::core {
namespace {

TEST(AlertMatrix, MapsEveryPackedCheckToItsInvariant)
{
    EXPECT_EQ(alertMatrix(noc::PackedCheck::IllegalTurn),
              InvariantId::IllegalTurn);
    EXPECT_EQ(alertMatrix(noc::PackedCheck::InvalidRcOutput),
              InvariantId::InvalidRcOutput);
    EXPECT_EQ(alertMatrix(noc::PackedCheck::NonMinimalRoute),
              InvariantId::NonMinimalRoute);
    EXPECT_EQ(alertMatrix(noc::PackedCheck::RcOnNonHeaderFlit),
              InvariantId::RcOnNonHeaderFlit);
    EXPECT_EQ(alertMatrix(noc::PackedCheck::RcOnEmptyVc),
              InvariantId::RcOnEmptyVc);
    EXPECT_EQ(alertMatrix(noc::PackedCheck::EjectionAtWrongDestination),
              InvariantId::EjectionAtWrongDestination);
}

TEST(AlertMatrix, MaskBitMatchesThePackedViolationWord)
{
    // The bit PackedCycleEvents::fire sets for a code must be the bit
    // alertMaskBit derives for the mapped invariant, for every
    // fast-path-fireable check.
    const noc::PackedCheck checks[] = {
        noc::PackedCheck::IllegalTurn,
        noc::PackedCheck::InvalidRcOutput,
        noc::PackedCheck::NonMinimalRoute,
        noc::PackedCheck::RcOnNonHeaderFlit,
        noc::PackedCheck::RcOnEmptyVc,
        noc::PackedCheck::EjectionAtWrongDestination,
    };
    for (const noc::PackedCheck check : checks) {
        noc::PackedCycleEvents ev;
        ev.fire(check, 0, 0);
        EXPECT_EQ(ev.mask, alertMaskBit(alertMatrix(check)))
            << "code " << static_cast<int>(check);
    }
}

TEST(AlertMatrix, ExpandPreservesOrderAndFields)
{
    noc::PackedCycleEvents ev;
    ev.cycle = 123;
    ev.router = 9;
    ev.fire(noc::PackedCheck::InvalidRcOutput, 2, -1);
    ev.fire(noc::PackedCheck::RcOnEmptyVc, 2, 1);
    ev.fire(noc::PackedCheck::EjectionAtWrongDestination, 4, -1);

    std::vector<Assertion> out;
    out.push_back({InvariantId::IllegalTurn, 1, 1, 1, 1}); // pre-existing
    expandPackedEvents(ev, out);

    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[1].id, InvariantId::InvalidRcOutput);
    EXPECT_EQ(out[1].cycle, 123u);
    EXPECT_EQ(out[1].router, 9);
    EXPECT_EQ(out[1].port, 2);
    EXPECT_EQ(out[1].vc, -1);
    EXPECT_EQ(out[2].id, InvariantId::RcOnEmptyVc);
    EXPECT_EQ(out[2].port, 2);
    EXPECT_EQ(out[2].vc, 1);
    EXPECT_EQ(out[3].id, InvariantId::EjectionAtWrongDestination);
    EXPECT_EQ(out[3].port, 4);
    EXPECT_EQ(out[3].vc, -1);
}

} // namespace
} // namespace nocalert::core
