#include "core/alert.hpp"

#include <gtest/gtest.h>

namespace nocalert::core {
namespace {

Assertion
make(InvariantId id, noc::Cycle cycle)
{
    return {id, cycle, 0, 0, 0};
}

TEST(AlertLog, EmptyQueries)
{
    AlertLog log;
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(log.count(), 0u);
    EXPECT_FALSE(log.firstCycle().has_value());
    EXPECT_FALSE(log.firstCautiousCycle().has_value());
    EXPECT_TRUE(log.distinctInvariants().empty());
    EXPECT_FALSE(log.anyAtOrAfter(0));
}

TEST(AlertLog, FirstCycleAndCounts)
{
    AlertLog log;
    log.record(make(InvariantId::GrantWithoutRequest, 10));
    log.record(make(InvariantId::GrantWithoutRequest, 11));
    log.record(make(InvariantId::XbarRowOneHot, 11));
    EXPECT_EQ(log.count(), 3u);
    EXPECT_EQ(*log.firstCycle(), 10);
    EXPECT_EQ(log.countFor(InvariantId::GrantWithoutRequest), 2u);
    EXPECT_EQ(log.countFor(InvariantId::XbarRowOneHot), 1u);
    EXPECT_EQ(log.countFor(InvariantId::IllegalTurn), 0u);
}

TEST(AlertLog, CautiousIgnoresLoneLowRisk)
{
    AlertLog log;
    log.record(make(InvariantId::IllegalTurn, 5));
    log.record(make(InvariantId::NonMinimalRoute, 6));
    EXPECT_TRUE(log.firstCycle().has_value());
    EXPECT_FALSE(log.firstCautiousCycle().has_value());
}

TEST(AlertLog, CautiousTriggersOnCorroboration)
{
    AlertLog log;
    log.record(make(InvariantId::IllegalTurn, 5));
    log.record(make(InvariantId::ReadFromEmptyBuffer, 9));
    EXPECT_EQ(*log.firstCycle(), 5);
    EXPECT_EQ(*log.firstCautiousCycle(), 9);
}

TEST(AlertLog, InvariantsAtCycleDeduplicates)
{
    AlertLog log;
    log.record(make(InvariantId::GrantNotOneHot, 7));
    log.record(make(InvariantId::GrantNotOneHot, 7));
    log.record(make(InvariantId::GrantWithoutRequest, 7));
    log.record(make(InvariantId::IllegalTurn, 8));
    const auto ids = log.invariantsAtCycle(7);
    EXPECT_EQ(ids.size(), 2u);
}

TEST(AlertLog, DistinctInvariantsSorted)
{
    AlertLog log;
    log.record(make(InvariantId::WriteToFullBuffer, 3));
    log.record(make(InvariantId::IllegalTurn, 4));
    const auto ids = log.distinctInvariants();
    ASSERT_EQ(ids.size(), 2u);
    EXPECT_EQ(ids[0], InvariantId::IllegalTurn);
    EXPECT_EQ(ids[1], InvariantId::WriteToFullBuffer);
}

TEST(AlertLog, AnyAtOrAfter)
{
    AlertLog log;
    log.record(make(InvariantId::IllegalTurn, 10));
    EXPECT_TRUE(log.anyAtOrAfter(10));
    EXPECT_TRUE(log.anyAtOrAfter(5));
    EXPECT_FALSE(log.anyAtOrAfter(11));
}

TEST(AlertLog, ClearResets)
{
    AlertLog log;
    log.record(make(InvariantId::IllegalTurn, 1));
    log.clear();
    EXPECT_TRUE(log.empty());
    EXPECT_EQ(log.countFor(InvariantId::IllegalTurn), 0u);
}

TEST(AlertLog, BatchRecord)
{
    AlertLog log;
    std::vector<Assertion> batch = {make(InvariantId::IllegalTurn, 1),
                                    make(InvariantId::RcOnEmptyVc, 2)};
    log.record(batch);
    EXPECT_EQ(log.count(), 2u);
}

} // namespace
} // namespace nocalert::core
