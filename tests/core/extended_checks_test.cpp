/**
 * @file
 * Tests of the opt-in extension checkers (beyond the paper's Table 1):
 * allocation-table consistency. These close the silent-starvation gap
 * that single-VC designs expose when an allocation leaks.
 */

#include <gtest/gtest.h>

#include "core/nocalert.hpp"
#include "noc/network.hpp"

namespace nocalert::core {
namespace {

noc::NetworkConfig
singleVcConfig(bool extended)
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.router.numVcs = 1;
    config.router.classes = {{"data", 5}};
    config.router.extendedChecks = extended;
    return config;
}

noc::TrafficSpec
traffic()
{
    noc::TrafficSpec spec;
    spec.injectionRate = 0.05;
    spec.seed = 41;
    return spec;
}

TEST(ExtendedChecks, QuietOnHealthySingleVcNetwork)
{
    noc::Network net(singleVcConfig(true), traffic());
    NoCAlertEngine engine(net);
    net.run(2000);
    EXPECT_EQ(engine.log().count(), 0u);
}

TEST(ExtendedChecks, QuietOnHealthyBaselineNetwork)
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.router.extendedChecks = true;
    noc::Network net(config, traffic());
    NoCAlertEngine engine(net);
    net.run(2000);
    EXPECT_EQ(engine.log().count(), 0u);
}

/** Leak an allocation and check detection with/without extension. */
std::size_t
alertsAfterLeak(bool extended)
{
    noc::Network net(singleVcConfig(extended), traffic());
    NoCAlertEngine engine(net);
    net.run(300);

    // Forge the leak directly: mark an output VC occupied with no
    // owner — the state an in-flight route-register corruption leaves
    // behind when the tail's release frees the wrong entry.
    bool mutated = false;
    net.setTapHook([&](noc::Router &router, noc::TapPoint tap,
                       noc::RouterWires &) {
        if (mutated || router.node() != 5 ||
            tap != noc::TapPoint::CycleStart)
            return;
        noc::OutVcState &ov =
            router.outVcState(noc::portIndex(noc::Port::East), 0);
        if (ov.free) {
            ov.free = false; // occupied, ownerPort/-Vc stay -1
            mutated = true;
        }
    });
    net.run(300);
    EXPECT_TRUE(mutated);
    return engine.log().count();
}

TEST(ExtendedChecks, FaithfulSetMissesAllocationLeak)
{
    // The paper's 32 checkers cannot see a leaked allocation: nothing
    // illegal is ever output, the port simply starves.
    EXPECT_EQ(alertsAfterLeak(false), 0u);
}

TEST(ExtendedChecks, ExtensionCatchesAllocationLeak)
{
    EXPECT_GT(alertsAfterLeak(true), 0u);
}

TEST(ExtendedChecks, ExtensionCatchesOwnerStateMismatch)
{
    noc::Network net(singleVcConfig(true), traffic());
    NoCAlertEngine engine(net);
    net.run(200);

    // Rewind an Active owner to VcAllocWait while it still holds its
    // output VC: ownership without an Active owner.
    bool mutated = false;
    net.setTapHook([&](noc::Router &router, noc::TapPoint tap,
                       noc::RouterWires &) {
        if (mutated || tap != noc::TapPoint::CycleStart)
            return;
        for (int p = 0; p < noc::kNumPorts; ++p) {
            noc::VcRecord &rec = router.vcRecord(p, 0);
            const auto &fifo = router.fifo(p, 0);
            if (rec.state == noc::VcState::Active && !fifo.empty() &&
                noc::isHead(fifo.peek(0).type)) {
                rec.state = noc::VcState::VcAllocWait;
                rec.outVc = -1;
                mutated = true;
                return;
            }
        }
    });
    net.run(500);
    ASSERT_TRUE(mutated);
    EXPECT_GT(engine.log().countFor(InvariantId::ConsistentVcState), 0u);
}

} // namespace
} // namespace nocalert::core
