#include "core/nocalert.hpp"

#include <gtest/gtest.h>

#include "fault/injector.hpp"

namespace nocalert::core {
namespace {

noc::NetworkConfig
mesh()
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

noc::TrafficSpec
traffic(double rate = 0.1)
{
    noc::TrafficSpec spec;
    spec.injectionRate = rate;
    spec.seed = 21;
    return spec;
}

TEST(NoCAlertEngine, QuietOnHealthyNetwork)
{
    noc::Network net(mesh(), traffic());
    NoCAlertEngine engine(net);
    net.run(2000);
    EXPECT_TRUE(engine.log().empty());
}

TEST(NoCAlertEngine, DetectsInjectedFault)
{
    noc::Network net(mesh(), traffic());
    NoCAlertEngine engine(net);
    net.run(200);

    fault::FaultSite site;
    site.router = 5;
    site.signal = fault::SignalClass::Sa1Grant;
    site.port = 0;
    site.bit = 0;

    fault::FaultInjector injector;
    injector.arm({site, net.cycle(), fault::FaultKind::Permanent});
    injector.attach(net);
    net.run(300);

    EXPECT_FALSE(engine.log().empty());
    EXPECT_GE(*engine.log().firstCycle(), 200);
}

TEST(NoCAlertEngine, CallbackFiresPerAssertion)
{
    noc::Network net(mesh(), traffic());
    NoCAlertEngine engine(net);
    std::size_t calls = 0;
    engine.onAlert([&calls](const Assertion &) { ++calls; });
    net.run(100);

    fault::FaultSite site;
    site.router = 5;
    site.signal = fault::SignalClass::RcDone;
    site.port = 0;
    site.bit = 1;
    fault::FaultInjector injector;
    injector.arm({site, net.cycle(), fault::FaultKind::Transient});
    injector.attach(net);
    net.run(100);

    EXPECT_EQ(calls, engine.log().count());
    EXPECT_GT(calls, 0u);
}

TEST(NoCAlertEngine, ClearLogResets)
{
    noc::Network net(mesh(), traffic());
    NoCAlertEngine engine(net);
    net.run(50);

    fault::FaultSite site;
    site.router = 9;
    site.signal = fault::SignalClass::WriteEnable;
    site.port = noc::portIndex(noc::Port::Local);
    site.bit = 3;
    fault::FaultInjector injector;
    injector.arm({site, net.cycle(), fault::FaultKind::Permanent});
    injector.attach(net);
    net.run(200);
    ASSERT_FALSE(engine.log().empty());
    engine.clearLog();
    EXPECT_TRUE(engine.log().empty());
}

TEST(NoCAlertEngine, ManualCompositionWorks)
{
    noc::Network net(mesh(), traffic());
    NoCAlertEngine a(net, /*attach_now=*/false);
    NoCAlertEngine b(net, /*attach_now=*/false);
    net.setRouterObserver([&](const noc::Router &router,
                              const noc::RouterWires &wires) {
        a.observeRouter(router, wires);
        b.observeRouter(router, wires);
    });
    net.run(100);

    fault::FaultSite site;
    site.router = 5;
    site.signal = fault::SignalClass::Sa1Grant;
    site.port = 0;
    site.bit = 0;
    fault::FaultInjector injector;
    injector.arm({site, net.cycle(), fault::FaultKind::Permanent});
    injector.attach(net);
    net.run(200);

    EXPECT_EQ(a.log().count(), b.log().count());
    EXPECT_GT(a.log().count(), 0u);
}

TEST(NoCAlertEngine, PermanentFaultAssertsPersistently)
{
    noc::Network net(mesh(), traffic(0.15));
    NoCAlertEngine engine(net);
    net.run(200);

    fault::FaultSite site;
    site.router = 5;
    site.signal = fault::SignalClass::Sa1Grant;
    site.port = noc::portIndex(noc::Port::Local);
    site.bit = 0;

    fault::FaultInjector injector;
    injector.arm({site, net.cycle(), fault::FaultKind::Permanent});
    injector.attach(net);
    net.run(500);

    // A permanent upset keeps tripping checkers (paper Section 5.2:
    // the checker's flag remains raised, unlike a transient's blip).
    EXPECT_GT(engine.log().count(), 10u);
}

} // namespace
} // namespace nocalert::core
