/**
 * @file
 * Per-invariant checker tests: for each of the 32 Table-1 checkers a
 * targeted wire/register corruption is crafted and the specific
 * invariant must fire. The mutations model exactly the single-bit
 * control upsets of the paper's fault model.
 */

#include "core/checkers.hpp"

#include <gtest/gtest.h>

#include "core/nocalert.hpp"
#include "util/bits.hpp"

namespace nocalert::core {
namespace {

using noc::FlitType;
using noc::isHead;
using noc::kNumPorts;
using noc::Port;
using noc::portIndex;
using noc::Router;
using noc::RouterWires;
using noc::TapPoint;
using noc::VcState;

constexpr int kL = portIndex(Port::Local);

/**
 * Run a 4x4 mesh under uniform traffic with a one-shot mutation hook:
 * the hook fires when its enabling condition is met, corrupting wires
 * or state; the NoCAlert engine then collects the assertions.
 */
class MutationHarness
{
  public:
    using Mutation = std::function<bool(Router &, TapPoint, RouterWires &)>;

    explicit MutationHarness(noc::NetworkConfig config = smallMesh())
        : net_(config, trafficSpec()), engine_(net_)
    {
    }

    static noc::NetworkConfig
    smallMesh()
    {
        noc::NetworkConfig config;
        config.width = 4;
        config.height = 4;
        return config;
    }

    static noc::TrafficSpec
    trafficSpec()
    {
        noc::TrafficSpec spec;
        spec.injectionRate = 0.15;
        spec.seed = 77;
        return spec;
    }

    /** Run until the mutation fired plus @p extra cycles. */
    void
    run(Mutation mutation, noc::Cycle warmup = 30, noc::Cycle extra = 80)
    {
        net_.setTapHook([this, mutation](Router &router, TapPoint tap,
                                         RouterWires &wires) {
            if (fired_ || wires.cycle < warmup_)
                return;
            if (mutation(router, tap, wires))
                fired_ = true;
        });
        warmup_ = warmup;
        noc::Cycle deadline = 4000;
        while (!fired_ && net_.cycle() < deadline)
            net_.step();
        ASSERT_TRUE(fired_) << "mutation never found its trigger";
        net_.run(extra);
    }

    const AlertLog &log() const { return engine_.log(); }
    noc::Network &net() { return net_; }
    bool fired() const { return fired_; }

  private:
    noc::Network net_;
    NoCAlertEngine engine_;
    bool fired_ = false;
    noc::Cycle warmup_ = 0;
};

TEST(Checkers, CleanRunRaisesNothing)
{
    noc::Network net(MutationHarness::smallMesh(),
                     MutationHarness::trafficSpec());
    NoCAlertEngine engine(net);
    net.run(1500);
    EXPECT_EQ(engine.log().count(), 0u);
}

TEST(Checkers, Inv01_IllegalTurn)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRc)
            return false;
        // A header arriving on a Y-dimension input redirected to an
        // X-dimension output: forbidden under XY routing.
        for (int p : {portIndex(Port::North), portIndex(Port::South)}) {
            if (w.in[p].rcDone != 0 && w.in[p].rcHeadValid &&
                isHead(w.in[p].rcHeadType)) {
                w.in[p].rcOutPort = portIndex(Port::East);
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::IllegalTurn), 0u);
}

TEST(Checkers, Inv02_InvalidRcOutput)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRc)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (w.in[p].rcDone != 0) {
                w.in[p].rcOutPort = 7; // nonexistent port
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::InvalidRcOutput), 0u);
}

TEST(Checkers, Inv03_NonMinimalRoute)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRc)
            return false;
        // Reverse an eastbound decision to west: still a legal turn
        // from the local port, but a step away from the destination.
        // The router must not sit on column 0, where West would be a
        // disconnected port (invariance 2 territory instead).
        if (router.node() % 4 != 0 && w.in[kL].rcDone != 0 &&
            w.in[kL].rcHeadValid && isHead(w.in[kL].rcHeadType) &&
            w.in[kL].rcOutPort == portIndex(Port::East)) {
            w.in[kL].rcOutPort = portIndex(Port::West);
            return true;
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::NonMinimalRoute), 0u);
}

TEST(Checkers, Inv04_GrantWithoutRequest)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSa1)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (w.in[p].sa1Req == 0 && w.in[p].sa1Grant == 0) {
                w.in[p].sa1Grant = 1;
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::GrantWithoutRequest), 0u);
}

TEST(Checkers, Inv05_GrantToNobody)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSa1)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (w.in[p].sa1Req != 0) {
                w.in[p].sa1Grant = 0;
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::GrantToNobody), 0u);
}

TEST(Checkers, Inv06_GrantNotOneHot)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSa1)
            return false;
        const unsigned v = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            if (isOneHot(w.in[p].sa1Grant)) {
                const unsigned winner =
                    static_cast<unsigned>(lowestSetBit(w.in[p].sa1Grant));
                w.in[p].sa1Grant = setBit(w.in[p].sa1Grant,
                                          (winner + 1) % v);
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::GrantNotOneHot), 0u);
}

TEST(Checkers, Inv07_GrantToOccupiedOrFullVc)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterVa2)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        // Find an occupied output VC and force a grant onto it.
        for (int o = 0; o < kNumPorts; ++o) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (!w.out[o].outVc[v].free &&
                    w.out[o].va2Grant[v] == 0) {
                    w.out[o].va2Grant[v] = 1; // client (port 0, vc 0)
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::GrantToOccupiedOrFullVc), 0u);
}

TEST(Checkers, Inv08_OneToOneVcAssignment)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterVa2)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int o = 0; o < kNumPorts; ++o) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (isOneHot(w.out[o].va2Grant[v])) {
                    // Grant the same client a second output VC.
                    const unsigned other = (v + 1) % num_vcs;
                    w.out[o].va2Grant[other] |= w.out[o].va2Grant[v];
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::OneToOneVcAssignment), 0u);
}

TEST(Checkers, Inv09_OneToOnePortAssignment)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSa2)
            return false;
        for (int o = 0; o < kNumPorts; ++o) {
            if (isOneHot(w.out[o].sa2Grant)) {
                // A second output port also grants this input port.
                const int other = (o + 1) % kNumPorts;
                w.out[other].sa2Grant |= w.out[o].sa2Grant;
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::OneToOnePortAssignment), 0u);
}

TEST(Checkers, Inv10_VaAgreesWithRc)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterVa2)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int o = 0; o < kNumPorts; ++o) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (w.out[o].va2Grant[v] != 0) {
                    // Move the grant to a different output port: the
                    // winner's RC register still points at o.
                    const int other = (o + 1) % kNumPorts;
                    w.out[other].va2Grant[v] = w.out[o].va2Grant[v];
                    w.out[o].va2Grant[v] = 0;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::VaAgreesWithRc), 0u);
}

TEST(Checkers, Inv11_SaAgreesWithRc)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSa2)
            return false;
        for (int o = 0; o < kNumPorts; ++o) {
            if (w.out[o].sa2Grant != 0) {
                const int other = (o + 1) % kNumPorts;
                w.out[other].sa2Grant = w.out[o].sa2Grant;
                w.out[o].sa2Grant = 0;
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::SaAgreesWithRc), 0u);
}

TEST(Checkers, Inv12_IntraVaStageOrder)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterVa2)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int o = 0; o < kNumPorts; ++o) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (w.out[o].va2Grant[v] != 0) {
                    // Shift the grant to a different output VC of the
                    // same port: the winner never selected it in VA1.
                    const unsigned other = (v + 1) % num_vcs;
                    w.out[o].va2Grant[other] = w.out[o].va2Grant[v];
                    w.out[o].va2Grant[v] = 0;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::IntraVaStageOrder), 0u);
}

TEST(Checkers, Inv13_IntraSaStageOrder)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSa2)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        // Grant an input port whose SA1 stage granted nothing.
        for (int p = 0; p < kNumPorts; ++p) {
            if ((w.in[p].sa1Grant & lowMask(num_vcs)) == 0) {
                w.out[portIndex(Port::East)].sa2Grant = setBit(
                    w.out[portIndex(Port::East)].sa2Grant,
                    static_cast<unsigned>(p));
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::IntraSaStageOrder), 0u);
}

TEST(Checkers, Inv14_XbarColumnOneHot)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        // Two schedule entries steering different inputs into the
        // same output column.
        noc::XbarSchedule &a = router.schedule(0);
        noc::XbarSchedule &b = router.schedule(1);
        if (a.valid || b.valid)
            return false;
        a = {true, 0, 1u << portIndex(Port::Local), 0};
        b = {true, 0, 1u << portIndex(Port::Local), 0};
        return true;
    });
    EXPECT_GT(h.log().countFor(InvariantId::XbarColumnOneHot), 0u);
}

TEST(Checkers, Inv15_XbarRowOneHot)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        noc::XbarSchedule &entry = router.schedule(kL);
        if (!entry.valid || popcount(entry.rowMask) != 1)
            return false;
        entry.rowMask |= 1u << ((lowestSetBit(entry.rowMask) + 1) %
                                kNumPorts); // unwanted multicast
        return true;
    });
    EXPECT_GT(h.log().countFor(InvariantId::XbarRowOneHot), 0u);
}

TEST(Checkers, Inv16_XbarFlitConservation)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            noc::XbarSchedule &entry = router.schedule(p);
            if (entry.valid) {
                entry.rowMask = 0; // the read flit vanishes
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::XbarFlitConservation), 0u);
}

TEST(Checkers, Inv17_ConsistentVcState)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRc)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            // Mark RC done on a VC that was not awaiting routing.
            const std::uint32_t not_waiting =
                ~w.in[p].rcWaiting & lowMask(num_vcs);
            if (w.in[p].rcDone != 0 && not_waiting != 0) {
                w.in[p].rcDone |= 1u << lowestSetBit(not_waiting);
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::ConsistentVcState), 0u);
}

TEST(Checkers, Inv18_HeaderOnlyIntoFreeVc)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterInputs)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            if (!w.in[p].inValid || isHead(w.in[p].inFlit.type))
                continue;
            // Steer a body flit into an idle VC.
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (w.in[p].vc[v].state == VcState::Idle &&
                    w.in[p].vc[v].occupancy == 0) {
                    w.in[p].writeEnable = 1u << v;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::HeaderOnlyIntoFreeVc), 0u);
}

TEST(Checkers, Inv19_InvalidOutputVcValue)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                noc::VcRecord &rec = router.vcRecord(p, v);
                if (rec.state == VcState::Active) {
                    rec.outVc = 7; // beyond any configured VC count
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::InvalidOutputVcValue), 0u);
}

TEST(Checkers, Inv20_RcOnNonHeaderFlit)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRcReq)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                const auto &fifo = router.fifo(p, v);
                // An active mid-packet VC: its head is a body flit.
                if (router.vcRecord(p, v).state == VcState::Active &&
                    !fifo.empty() && !isHead(fifo.peek(0).type)) {
                    w.in[p].rcWaiting = 1u << v;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::RcOnNonHeaderFlit), 0u);
}

TEST(Checkers, Inv21_RcOnEmptyVc)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRcReq)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (router.vcRecord(p, v).state == VcState::Idle &&
                    router.fifo(p, v).empty()) {
                    w.in[p].rcWaiting = 1u << v;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::RcOnEmptyVc), 0u);
}

TEST(Checkers, Inv22_VaOnNonHeaderFlit)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                noc::VcRecord &rec = router.vcRecord(p, v);
                const auto &fifo = router.fifo(p, v);
                // Re-wind an active mid-stream VC into the VA stage:
                // the flit at its head is a body flit.
                if (rec.state == VcState::Active && !fifo.empty() &&
                    !isHead(fifo.peek(0).type) && rec.outPort >= 0) {
                    rec.state = VcState::VcAllocWait;
                    rec.outVc = -1;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::VaOnNonHeaderFlit), 0u);
}

TEST(Checkers, Inv23_VaOnEmptyVc)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (unsigned v = 0; v < num_vcs; ++v) {
            noc::VcRecord &rec = router.vcRecord(kL, v);
            if (rec.state == VcState::Idle &&
                router.fifo(kL, v).empty()) {
                // A corrupted state register: the VC claims a packet
                // awaits allocation, but its buffer is empty.
                rec.state = VcState::VcAllocWait;
                rec.outPort = portIndex(Port::East);
                rec.msgClass = 0;
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::VaOnEmptyVc), 0u);
}

TEST(Checkers, Inv24_ReadFromEmptyBuffer)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (unsigned v = 0; v < num_vcs; ++v) {
            if (router.fifo(kL, v).empty() &&
                !router.schedule(kL).valid) {
                router.schedule(kL) = {
                    true, static_cast<std::uint8_t>(v),
                    1u << portIndex(Port::East), 0};
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::ReadFromEmptyBuffer), 0u);
}

TEST(Checkers, Inv25_WriteToFullBuffer)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterInputs)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (!w.in[p].inValid || w.in[p].writeEnable == 0)
                continue;
            const unsigned v =
                static_cast<unsigned>(lowestSetBit(w.in[p].writeEnable));
            // Pre-fill the target buffer to capacity: the incoming
            // write-enable now targets a full FIFO.
            noc::VcFifo &fifo = router.fifo(p, v);
            while (!fifo.full())
                fifo.push(w.in[p].inFlit);
            return true;
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::WriteToFullBuffer), 0u);
}

TEST(Checkers, Inv26_BufferAtomicityViolation)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterInputs)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            if (!w.in[p].inValid || !isHead(w.in[p].inFlit.type))
                continue;
            // Steer a header into an occupied VC.
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (w.in[p].vc[v].state != VcState::Idle &&
                    w.in[p].vc[v].occupancy > 0 &&
                    w.in[p].vc[v].occupancy <
                        router.params().bufferDepth) {
                    w.in[p].writeEnable = 1u << v;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::BufferAtomicityViolation), 0u);
}

TEST(Checkers, Inv27_NonAtomicPacketMixing)
{
    noc::NetworkConfig config = MutationHarness::smallMesh();
    config.router.atomicBuffers = false;
    MutationHarness h(config);
    h.run([](Router &router, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterInputs)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            if (!w.in[p].inValid || isHead(w.in[p].inFlit.type))
                continue;
            // A body flit following a completed packet (tail already
            // written): in a non-atomic VC only a header may follow.
            for (unsigned v = 0; v < num_vcs; ++v) {
                if (w.in[p].vc[v].tailArrived &&
                    w.in[p].vc[v].occupancy > 0 &&
                    w.in[p].vc[v].occupancy <
                        router.params().bufferDepth) {
                    w.in[p].writeEnable = 1u << v;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::NonAtomicPacketMixing), 0u);
}

TEST(Checkers, Inv28_PacketFlitCountViolation)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            for (unsigned v = 0; v < num_vcs; ++v) {
                noc::VcRecord &rec = router.vcRecord(p, v);
                // Corrupt the flit counter mid-packet: the tail will
                // arrive with the wrong count.
                if (rec.state == VcState::Active && !rec.tailArrived &&
                    rec.flitsArrived >= 1 && rec.expectedLength == 5) {
                    rec.flitsArrived += 2;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::PacketFlitCountViolation), 0u);
}

TEST(Checkers, Inv29_ConcurrentReadMultipleVcs)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterSt)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (popcount(w.in[p].readEnable) == 1) {
                // A stuck read-enable line on a second VC.
                const unsigned v = static_cast<unsigned>(
                    lowestSetBit(w.in[p].readEnable));
                w.in[p].readEnable |= 1u << ((v + 1) % 4);
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::ConcurrentReadMultipleVcs), 0u);
}

TEST(Checkers, Inv30_ConcurrentWriteMultipleVcs)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterInputs)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (popcount(w.in[p].writeEnable) == 1) {
                const unsigned v = static_cast<unsigned>(
                    lowestSetBit(w.in[p].writeEnable));
                w.in[p].writeEnable |= 1u << ((v + 1) % 4);
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::ConcurrentWriteMultipleVcs),
              0u);
}

TEST(Checkers, Inv31_ConcurrentRcMultipleVcs)
{
    MutationHarness h;
    h.run([](Router &, TapPoint tap, RouterWires &w) {
        if (tap != TapPoint::AfterRc)
            return false;
        for (int p = 0; p < kNumPorts; ++p) {
            if (popcount(w.in[p].rcDone) == 1) {
                const unsigned v = static_cast<unsigned>(
                    lowestSetBit(w.in[p].rcDone));
                w.in[p].rcDone |= 1u << ((v + 1) % 4);
                return true;
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::ConcurrentRcMultipleVcs), 0u);
}

TEST(Checkers, Inv32_EjectionAtWrongDestination)
{
    MutationHarness h;
    h.run([](Router &router, TapPoint tap, RouterWires &) {
        if (tap != TapPoint::CycleStart)
            return false;
        const unsigned num_vcs = router.params().numVcs;
        for (int p = 0; p < kNumPorts; ++p) {
            if (p == kL)
                continue; // locally injected traffic may eject here
            for (unsigned v = 0; v < num_vcs; ++v) {
                noc::VcRecord &rec = router.vcRecord(p, v);
                const auto &fifo = router.fifo(p, v);
                // Redirect a transiting packet's route register to the
                // local port: its header will eject at the wrong node.
                if (rec.state == VcState::VcAllocWait &&
                    !fifo.empty() && isHead(fifo.peek(0).type) &&
                    fifo.peek(0).dst != router.node()) {
                    rec.outPort = kL;
                    return true;
                }
            }
        }
        return false;
    });
    EXPECT_GT(h.log().countFor(InvariantId::EjectionAtWrongDestination),
              0u);
}

TEST(NiCheckers, MapAnomaliesToInvariants)
{
    noc::NetworkConfig config = MutationHarness::smallMesh();
    noc::NetworkInterface ni(config, 5);
    noc::NiWires wires;
    wires.cycle = 3;
    wires.node = 5;
    wires.anomalies = noc::kNiWrongDestination | noc::kNiCountViolation;

    std::vector<Assertion> out;
    evaluateNiCheckers(ni, wires, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, InvariantId::EjectionAtWrongDestination);
    EXPECT_EQ(out[1].id, InvariantId::PacketFlitCountViolation);
    EXPECT_EQ(out[0].cycle, 3);
    EXPECT_EQ(out[0].router, 5);

    out.clear();
    wires.anomalies = 0;
    evaluateNiCheckers(ni, wires, out);
    EXPECT_TRUE(out.empty());
}

} // namespace
} // namespace nocalert::core
