/**
 * @file
 * Pure-function tests of evaluateCheckers over hand-built wire
 * records: each scenario constructs exactly one anomalous signal
 * pattern and asserts the precise checker verdict, independent of any
 * network simulation.
 */

#include <gtest/gtest.h>

#include "core/checkers.hpp"

namespace nocalert::core {
namespace {

using noc::Flit;
using noc::FlitType;
using noc::kNumPorts;
using noc::Port;
using noc::portIndex;
using noc::RouterWires;
using noc::VcState;

class CheckerWiresFixture : public ::testing::Test
{
  protected:
    CheckerWiresFixture()
        : config_(makeConfig()),
          routing_(noc::makeRouting(config_.routing)),
          router_(config_, kNode)
    {
        wires_.clear(100, kNode);
        ctx_.config = &config_;
        ctx_.routing = routing_.get();
    }

    static noc::NetworkConfig
    makeConfig()
    {
        noc::NetworkConfig config;
        config.width = 4;
        config.height = 4;
        return config;
    }

    std::vector<Assertion>
    evaluate()
    {
        std::vector<Assertion> out;
        evaluateCheckers(router_, wires_, ctx_, out);
        return out;
    }

    static bool
    fired(const std::vector<Assertion> &out, InvariantId id)
    {
        for (const Assertion &a : out)
            if (a.id == id)
                return true;
        return false;
    }

    static constexpr noc::NodeId kNode = 5; // (1,1): all ports live

    noc::NetworkConfig config_;
    std::unique_ptr<noc::RoutingAlgorithm> routing_;
    noc::Router router_;
    CheckerContext ctx_;
    RouterWires wires_;
};

TEST_F(CheckerWiresFixture, QuiescentWiresRaiseNothing)
{
    EXPECT_TRUE(evaluate().empty());
}

TEST_F(CheckerWiresFixture, ArbiterTruthTable)
{
    // grant & ~req -> 4; req & !grant -> 5; multi-hot grant -> 6.
    wires_.in[0].sa1Req = 0b0010;
    wires_.in[0].sa1Grant = 0b0010;
    EXPECT_TRUE(evaluate().empty()); // legal grant

    wires_.in[0].sa1Grant = 0b0100;
    auto out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::GrantWithoutRequest));
    // A grant WAS produced (to the wrong client), so invariance 5 —
    // "no winner despite requests" — stays silent.
    EXPECT_FALSE(fired(out, InvariantId::GrantToNobody));

    wires_.in[0].sa1Grant = 0;
    out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::GrantToNobody));
    EXPECT_FALSE(fired(out, InvariantId::GrantWithoutRequest));

    wires_.in[0].sa1Req = 0b0110;
    wires_.in[0].sa1Grant = 0b0110;
    out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::GrantNotOneHot));
    EXPECT_FALSE(fired(out, InvariantId::GrantWithoutRequest));
}

TEST_F(CheckerWiresFixture, XbarVectorChecks)
{
    wires_.xbarRow[0] = 0b00011; // multicast row
    auto out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::XbarRowOneHot));

    wires_.xbarRow[0] = 0;
    wires_.xbarCol[2] = 0b01010; // collision column
    out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::XbarColumnOneHot));
    EXPECT_FALSE(fired(out, InvariantId::XbarRowOneHot));
}

TEST_F(CheckerWiresFixture, XbarConservation)
{
    wires_.xbarFlitsIn = 2;
    wires_.xbarFlitsOut = 1;
    EXPECT_TRUE(fired(evaluate(), InvariantId::XbarFlitConservation));
}

TEST_F(CheckerWiresFixture, RcIllegalTurnAndRange)
{
    const int north = portIndex(Port::North);
    wires_.in[north].rcDone = 1;
    wires_.in[north].rcVc = 0;
    wires_.in[north].rcWaiting = 1;
    wires_.in[north].rcHeadValid = true;
    wires_.in[north].rcHeadType = FlitType::Head;
    Flit header;
    header.type = FlitType::Head;
    header.dst = 6; // one hop east of node 5
    wires_.in[north].rcFlit = header;

    // Y-input turning to X under XY: invariance 1 (and minimal, so no
    // invariance 3 confusion: East IS the minimal direction).
    wires_.in[north].rcOutPort = portIndex(Port::East);
    auto out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::IllegalTurn));
    EXPECT_FALSE(fired(out, InvariantId::InvalidRcOutput));

    // Out-of-range port: invariance 2 swallows the case.
    wires_.in[north].rcOutPort = 6;
    out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::InvalidRcOutput));
    EXPECT_FALSE(fired(out, InvariantId::IllegalTurn));
}

TEST_F(CheckerWiresFixture, RcOnGarbage)
{
    const int local = portIndex(Port::Local);
    wires_.in[local].rcDone = 1;
    wires_.in[local].rcVc = 0;
    wires_.in[local].rcWaiting = 1;
    wires_.in[local].rcOutPort = portIndex(Port::East);

    wires_.in[local].rcHeadValid = false; // empty buffer
    EXPECT_TRUE(fired(evaluate(), InvariantId::RcOnEmptyVc));

    wires_.in[local].rcHeadValid = true;
    wires_.in[local].rcHeadType = FlitType::Body;
    EXPECT_TRUE(fired(evaluate(), InvariantId::RcOnNonHeaderFlit));
}

TEST_F(CheckerWiresFixture, WriteChecks)
{
    const int west = portIndex(Port::West);
    auto &ipw = wires_.in[west];
    ipw.inValid = true;
    ipw.writeEnable = 1u << 1;

    // Body into an Idle VC: invariance 18.
    ipw.inFlit.type = FlitType::Body;
    ipw.inFlit.msgClass = 1;
    ipw.vc[1].state = VcState::Idle;
    ipw.vc[1].occupancy = 0;
    EXPECT_TRUE(fired(evaluate(), InvariantId::HeaderOnlyIntoFreeVc));

    // Header into an occupied VC: invariance 26 (atomic buffers).
    ipw.inFlit.type = FlitType::Head;
    ipw.vc[1].state = VcState::Active;
    ipw.vc[1].occupancy = 2;
    ipw.vc[1].outPort = portIndex(Port::East);
    ipw.vc[1].outVc = 2;
    ipw.vc[1].headValid = true;
    ipw.vc[1].headType = FlitType::Head;
    EXPECT_TRUE(
        fired(evaluate(), InvariantId::BufferAtomicityViolation));

    // Write into a full buffer: invariance 25.
    ipw.vc[1].occupancy = config_.router.bufferDepth;
    EXPECT_TRUE(fired(evaluate(), InvariantId::WriteToFullBuffer));
}

TEST_F(CheckerWiresFixture, FlitCountChecks)
{
    const int east = portIndex(Port::East);
    auto &ipw = wires_.in[east];
    ipw.inValid = true;
    ipw.writeEnable = 1u << 2;
    auto &snap = ipw.vc[2];
    snap.state = VcState::Active;
    snap.outPort = portIndex(Port::West);
    snap.outVc = 3;
    snap.occupancy = 2;
    snap.headValid = true;
    snap.headType = FlitType::Head;
    snap.flitsArrived = 2;
    snap.expectedLength = 5;

    // A tail arriving as the 3rd of 5 flits: invariance 28.
    ipw.inFlit.type = FlitType::Tail;
    ipw.inFlit.msgClass = 1;
    EXPECT_TRUE(
        fired(evaluate(), InvariantId::PacketFlitCountViolation));

    // The 3rd body flit is fine.
    ipw.inFlit.type = FlitType::Body;
    EXPECT_FALSE(
        fired(evaluate(), InvariantId::PacketFlitCountViolation));

    // A 6th flit overruns the class length.
    snap.flitsArrived = 5;
    EXPECT_TRUE(
        fired(evaluate(), InvariantId::PacketFlitCountViolation));
}

TEST_F(CheckerWiresFixture, PortLevelMultiEnable)
{
    wires_.in[0].writeEnable = 0b0011;
    wires_.in[0].inValid = true;
    wires_.in[0].inFlit.type = FlitType::Head;
    auto out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::ConcurrentWriteMultipleVcs));

    wires_.in[1].readEnable = 0b1010;
    out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::ConcurrentReadMultipleVcs));
}

TEST_F(CheckerWiresFixture, EjectionDestinationCheck)
{
    wires_.ejectValid = true;
    wires_.ejectFlit.type = FlitType::Head;
    wires_.ejectFlit.dst = 9; // not node 5
    EXPECT_TRUE(
        fired(evaluate(), InvariantId::EjectionAtWrongDestination));

    wires_.ejectFlit.dst = kNode;
    EXPECT_FALSE(
        fired(evaluate(), InvariantId::EjectionAtWrongDestination));
}

TEST_F(CheckerWiresFixture, ContinuousRegisterConsistency)
{
    // Active VC with an out-of-range outVc: invariance 19.
    auto &snap = wires_.in[2].vc[0];
    snap.state = VcState::Active;
    snap.outPort = portIndex(Port::East);
    snap.outVc = 6;
    snap.occupancy = 1;
    snap.headValid = true;
    snap.headType = FlitType::Body;
    EXPECT_TRUE(fired(evaluate(), InvariantId::InvalidOutputVcValue));

    // Routed state pointing at a disconnected port: invariance 2.
    snap.outVc = 1;
    snap.outPort = 7;
    EXPECT_TRUE(fired(evaluate(), InvariantId::InvalidRcOutput));

    // RouteWait with an empty buffer: invariance 17.
    snap.state = VcState::RouteWait;
    snap.outPort = noc::kInvalidPort;
    snap.occupancy = 0;
    snap.headValid = false;
    EXPECT_TRUE(fired(evaluate(), InvariantId::ConsistentVcState));
}

TEST_F(CheckerWiresFixture, VaGrantScenarios)
{
    const int east = portIndex(Port::East);
    const unsigned client = noc::vaClient(portIndex(Port::West), 1);

    // Prepare a legal-looking waiting VC at (West, 1).
    auto &snap = wires_.in[portIndex(Port::West)].vc[1];
    snap.state = VcState::VcAllocWait;
    snap.outPort = east;
    snap.occupancy = 1;
    snap.headValid = true;
    snap.headType = FlitType::Head;
    snap.va1CandidateVc = 0;

    auto &opw = wires_.out[east];
    opw.outVc[0].free = true;
    opw.outVc[0].credits =
        static_cast<std::uint8_t>(config_.router.bufferDepth);
    opw.va2Req[0] = 1ULL << client;
    opw.va2Grant[0] = 1ULL << client;
    EXPECT_TRUE(evaluate().empty()); // fully legal allocation

    // Grant to an occupied output VC: invariance 7.
    opw.outVc[0].free = false;
    EXPECT_TRUE(
        fired(evaluate(), InvariantId::GrantToOccupiedOrFullVc));
    opw.outVc[0].free = true;

    // Grant with insufficient credits (atomic): invariance 7.
    opw.outVc[0].credits = 2;
    EXPECT_TRUE(
        fired(evaluate(), InvariantId::GrantToOccupiedOrFullVc));
    opw.outVc[0].credits =
        static_cast<std::uint8_t>(config_.router.bufferDepth);

    // Granted VC differs from the VA1 candidate: invariance 12.
    snap.va1CandidateVc = 1;
    EXPECT_TRUE(fired(evaluate(), InvariantId::IntraVaStageOrder));
    snap.va1CandidateVc = 0;

    // Grant at an output the RC stage never chose: invariance 10.
    snap.outPort = portIndex(Port::North);
    EXPECT_TRUE(fired(evaluate(), InvariantId::VaAgreesWithRc));
    snap.outPort = east;

    // Same client granted two output VCs: invariance 8.
    opw.va2Req[1] = 1ULL << client;
    opw.va2Grant[1] = 1ULL << client;
    EXPECT_TRUE(fired(evaluate(), InvariantId::OneToOneVcAssignment));
    opw.va2Req[1] = opw.va2Grant[1] = 0;

    // VA completion on a body-headed VC: invariance 22.
    snap.headType = FlitType::Body;
    EXPECT_TRUE(fired(evaluate(), InvariantId::VaOnNonHeaderFlit));
    snap.headType = FlitType::Head;

    // VA completion on an empty VC: invariance 23 (and 17).
    snap.occupancy = 0;
    snap.headValid = false;
    auto out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::VaOnEmptyVc));
    EXPECT_TRUE(fired(out, InvariantId::ConsistentVcState));
}

TEST_F(CheckerWiresFixture, SaGrantScenarios)
{
    const int east = portIndex(Port::East);
    const int west = portIndex(Port::West);

    // A legal SA pass: West's VC 2 is Active toward East.
    auto &snap = wires_.in[west].vc[2];
    snap.state = VcState::Active;
    snap.outPort = east;
    snap.outVc = 3;
    snap.occupancy = 1;
    snap.headValid = true;
    snap.headType = FlitType::Body;
    wires_.in[west].sa1Req = 1u << 2;
    wires_.in[west].sa1Grant = 1u << 2;
    wires_.out[east].sa2Req = 1u << west;
    wires_.out[east].sa2Grant = 1u << west;
    EXPECT_TRUE(evaluate().empty());

    // SA2 win without an SA1 win: invariance 13.
    wires_.in[west].sa1Grant = 0;
    wires_.in[west].sa1Req = 0;
    auto out = evaluate();
    EXPECT_TRUE(fired(out, InvariantId::IntraSaStageOrder));
    wires_.in[west].sa1Req = 1u << 2;
    wires_.in[west].sa1Grant = 1u << 2;

    // SA2 grant at an output the winner never routed to: inv 11.
    snap.outPort = portIndex(Port::North);
    EXPECT_TRUE(fired(evaluate(), InvariantId::SaAgreesWithRc));
    snap.outPort = east;

    // Two outputs granting the same input port: invariance 9.
    wires_.out[portIndex(Port::North)].sa2Req = 1u << west;
    wires_.out[portIndex(Port::North)].sa2Grant = 1u << west;
    EXPECT_TRUE(fired(evaluate(), InvariantId::OneToOnePortAssignment));
}

TEST_F(CheckerWiresFixture, SpeculativeAllowsSameCycleVaSa)
{
    // In the speculative variant, an SA grant to a VC whose VA grant
    // landed this very cycle is legal; in the baseline it violates
    // pipeline order (invariance 17).
    auto arrange = [](noc::RouterWires &wires,
                      const noc::NetworkConfig &config) {
        const int east = portIndex(Port::East);
        const int west = portIndex(Port::West);
        auto &snap = wires.in[west].vc[1];
        snap.state = VcState::VcAllocWait; // VA not yet committed
        snap.outPort = east;
        snap.occupancy = 1;
        snap.headValid = true;
        snap.headType = FlitType::Head;
        snap.va1CandidateVc = 0;
        auto &opw = wires.out[east];
        opw.outVc[0].free = true;
        opw.outVc[0].credits =
            static_cast<std::uint8_t>(config.router.bufferDepth);
        const unsigned client = noc::vaClient(west, 1);
        opw.va2Req[0] = 1ULL << client;
        opw.va2Grant[0] = 1ULL << client;
        wires.in[west].sa1Req = 1u << 1;
        wires.in[west].sa1Grant = 1u << 1;
        opw.sa2Req = 1u << west;
        opw.sa2Grant = 1u << west;
    };

    arrange(wires_, config_);
    EXPECT_TRUE(fired(evaluate(), InvariantId::ConsistentVcState));

    noc::NetworkConfig spec_config = makeConfig();
    spec_config.router.speculative = true;
    noc::Router spec_router(spec_config, kNode);
    noc::RouterWires spec_wires;
    spec_wires.clear(100, kNode);
    arrange(spec_wires, spec_config);
    std::vector<Assertion> out;
    evaluateCheckers(spec_router, spec_wires, ctx_, out);
    EXPECT_FALSE(fired(out, InvariantId::ConsistentVcState));
}

TEST_F(CheckerWiresFixture, AssertionCarriesLocus)
{
    wires_.in[3].sa1Req = 0;
    wires_.in[3].sa1Grant = 1;
    const auto out = evaluate();
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out[0].cycle, 100);
    EXPECT_EQ(out[0].router, kNode);
    EXPECT_EQ(out[0].port, 3);
}

} // namespace
} // namespace nocalert::core
