#include "core/invariant.hpp"

#include <gtest/gtest.h>

#include <set>

namespace nocalert::core {
namespace {

TEST(InvariantCatalog, HasAll32InTableOrder)
{
    const auto &catalog = invariantCatalog();
    ASSERT_EQ(catalog.size(), kNumInvariants);
    for (unsigned i = 0; i < kNumInvariants; ++i)
        EXPECT_EQ(invariantIndex(catalog[i].id), i + 1);
}

TEST(InvariantCatalog, NamesAndDescriptionsNonEmpty)
{
    for (const InvariantInfo &info : invariantCatalog()) {
        EXPECT_NE(info.name[0], '\0');
        EXPECT_GT(std::string(info.description).size(), 20u);
    }
}

TEST(InvariantCatalog, InfoLookupRoundTrips)
{
    for (unsigned i = 1; i <= kNumInvariants; ++i) {
        const auto id = static_cast<InvariantId>(i);
        EXPECT_EQ(invariantInfo(id).id, id);
        EXPECT_STREQ(invariantName(id), invariantInfo(id).name);
    }
}

TEST(InvariantCatalog, RiskLevelsMatchPaperObservations)
{
    // Observation 2: invariants 1 and 3 are the low-risk pair.
    EXPECT_EQ(invariantInfo(InvariantId::IllegalTurn).risk,
              RiskLevel::Low);
    EXPECT_EQ(invariantInfo(InvariantId::NonMinimalRoute).risk,
              RiskLevel::Low);
    // Observation 3: invariant 5 is benign-transient/fatal-permanent.
    EXPECT_EQ(invariantInfo(InvariantId::GrantToNobody).risk,
              RiskLevel::PermanentSensitive);
    // Nothing else is special.
    std::set<unsigned> special = {1, 3, 5};
    for (const InvariantInfo &info : invariantCatalog()) {
        if (!special.count(invariantIndex(info.id))) {
            EXPECT_EQ(info.risk, RiskLevel::Standard)
                << invariantIndex(info.id);
        }
    }
}

TEST(InvariantCatalog, ApplicabilityFlags)
{
    EXPECT_TRUE(
        invariantInfo(InvariantId::BufferAtomicityViolation).atomicOnly);
    EXPECT_TRUE(
        invariantInfo(InvariantId::NonAtomicPacketMixing).nonAtomicOnly);
    EXPECT_TRUE(
        invariantInfo(InvariantId::ConcurrentRcMultipleVcs).atomicOnly);
    EXPECT_TRUE(invariantInfo(InvariantId::NonMinimalRoute).minimalOnly);
    EXPECT_TRUE(invariantInfo(InvariantId::VaAgreesWithRc).needsVcs);
    EXPECT_FALSE(invariantInfo(InvariantId::IllegalTurn).needsVcs);
}

TEST(InvariantCatalog, EveryInvariantGuardsSomeCondition)
{
    for (const InvariantInfo &info : invariantCatalog()) {
        EXPECT_NE(info.conditions, 0)
            << "invariant " << invariantIndex(info.id)
            << " maps to no correctness condition";
    }
}

TEST(InvariantCatalog, AllFourConditionsCovered)
{
    std::uint8_t combined = 0;
    for (const InvariantInfo &info : invariantCatalog())
        combined |= info.conditions;
    EXPECT_EQ(combined, kBoundedDelivery | kNoFlitDrop |
                            kNoNewFlitGeneration | kNoCorruptionOrMixing);
}

TEST(InvariantCatalog, ModuleClassesPartitionTable1)
{
    // Table 1 sections: 1-3 RC, 4-13 arbiters, 14-16 crossbar,
    // 17-23 VC state, 24-28 buffer, 29-31 port, 32 network.
    auto module_of = [](unsigned i) {
        return invariantInfo(static_cast<InvariantId>(i)).module;
    };
    for (unsigned i = 1; i <= 3; ++i)
        EXPECT_EQ(module_of(i), ModuleClass::RoutingComputation) << i;
    for (unsigned i = 4; i <= 13; ++i)
        EXPECT_EQ(module_of(i), ModuleClass::Arbiters) << i;
    for (unsigned i = 14; i <= 16; ++i)
        EXPECT_EQ(module_of(i), ModuleClass::Crossbar) << i;
    for (unsigned i = 17; i <= 23; ++i)
        EXPECT_EQ(module_of(i), ModuleClass::VcState) << i;
    for (unsigned i = 24; i <= 28; ++i)
        EXPECT_EQ(module_of(i), ModuleClass::Buffer) << i;
    for (unsigned i = 29; i <= 31; ++i)
        EXPECT_EQ(module_of(i), ModuleClass::PortLevel) << i;
    EXPECT_EQ(module_of(32), ModuleClass::NetworkLevel);
}

TEST(InvariantCatalog, ModuleClassNames)
{
    EXPECT_STREQ(moduleClassName(ModuleClass::Crossbar), "Crossbar");
    EXPECT_STREQ(moduleClassName(ModuleClass::NetworkLevel),
                 "Network-level");
}

} // namespace
} // namespace nocalert::core
