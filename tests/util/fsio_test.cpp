/**
 * Crash-consistent I/O primitives battery: CRC-32 known-answer
 * vectors, hex framing round trips, atomic+durable file replacement
 * (no torn observers, no temp debris), and the DurableAppender's
 * never-truncate append contract — the foundations the serve journal
 * and artifact cache build their kill -9 guarantees on.
 */

#include "util/fsio.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

namespace nocalert {
namespace {

namespace fs = std::filesystem;

class FsioTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_fsio_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

TEST_F(FsioTest, Crc32KnownAnswerVectors)
{
    // The classic IEEE 802.3 check value, plus boundary inputs.
    EXPECT_EQ(crc32(""), 0x00000000u);
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(std::string(1, '\0')), 0xD202EF8Du);
}

TEST_F(FsioTest, Crc32DetectsSingleBitFlips)
{
    const std::string payload = "{\"op\":\"submit\",\"id\":\"abc\"}";
    const std::uint32_t good = crc32(payload);
    for (std::size_t i = 0; i < payload.size(); ++i) {
        std::string flipped = payload;
        flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
        EXPECT_NE(crc32(flipped), good) << "flip at byte " << i;
    }
}

TEST_F(FsioTest, CrcHexRoundTripsAndRejectsMalformation)
{
    for (const std::uint32_t crc :
         {0u, 1u, 0xCBF43926u, 0xFFFFFFFFu}) {
        const std::string hex = crc32Hex(crc);
        EXPECT_EQ(hex.size(), 8u);
        const auto parsed = parseCrc32Hex(hex);
        ASSERT_TRUE(parsed.has_value()) << hex;
        EXPECT_EQ(*parsed, crc);
    }
    EXPECT_FALSE(parseCrc32Hex(""));
    EXPECT_FALSE(parseCrc32Hex("cbf4392"));   // Too short.
    EXPECT_FALSE(parseCrc32Hex("cbf439261")); // Too long.
    EXPECT_FALSE(parseCrc32Hex("cbf4392g"));  // Not hex.
    EXPECT_FALSE(parseCrc32Hex("cbf4 926")); // Embedded space.
}

TEST_F(FsioTest, WriteFileAtomicCreatesAndReplaces)
{
    const std::string target = path("artifact.json");
    ASSERT_TRUE(writeFileAtomic(target, "first"));
    auto read = readFileBytes(target);
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(*read, "first");

    ASSERT_TRUE(writeFileAtomic(target, "second, longer content"));
    read = readFileBytes(target);
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(*read, "second, longer content");
}

TEST_F(FsioTest, WriteFileAtomicLeavesNoTempDebris)
{
    ASSERT_TRUE(writeFileAtomic(path("a.json"), "aa"));
    ASSERT_TRUE(writeFileAtomic(path("b.json"), "bb"));
    std::size_t files = 0;
    for (const auto &entry : fs::directory_iterator(dir_)) {
        ++files;
        EXPECT_EQ(entry.path().filename().string().find(".tmp."),
                  std::string::npos)
            << entry.path();
    }
    EXPECT_EQ(files, 2u);
}

TEST_F(FsioTest, WriteFileAtomicFailsCleanlyOnMissingDirectory)
{
    const std::string target =
        (dir_ / "no-such-subdir" / "x.json").string();
    std::string error;
    EXPECT_FALSE(writeFileAtomic(target, "bytes", &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(fs::exists(target));
}

TEST_F(FsioTest, ReadFileBytesMissingFileIsNullopt)
{
    EXPECT_FALSE(readFileBytes(path("absent")).has_value());
}

TEST_F(FsioTest, ReadFileBytesRoundTripsBinaryContent)
{
    std::string bytes;
    for (int i = 0; i < 256; ++i)
        bytes.push_back(static_cast<char>(i));
    ASSERT_TRUE(writeFileAtomic(path("bin"), bytes));
    const auto read = readFileBytes(path("bin"));
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(*read, bytes);
}

TEST_F(FsioTest, DurableAppenderAccumulatesRecords)
{
    DurableAppender appender;
    std::string error;
    ASSERT_TRUE(appender.open(path("journal.wal"), &error)) << error;
    EXPECT_TRUE(appender.isOpen());
    ASSERT_TRUE(appender.append("one\n", &error)) << error;
    ASSERT_TRUE(appender.append("two\n", &error)) << error;
    appender.close();
    EXPECT_FALSE(appender.isOpen());

    const auto read = readFileBytes(path("journal.wal"));
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(*read, "one\ntwo\n");
}

TEST_F(FsioTest, DurableAppenderReopenNeverTruncates)
{
    {
        DurableAppender appender;
        ASSERT_TRUE(appender.open(path("journal.wal")));
        ASSERT_TRUE(appender.append("survivor\n"));
    } // Destructor closes.
    DurableAppender again;
    ASSERT_TRUE(again.open(path("journal.wal")));
    ASSERT_TRUE(again.append("appended\n"));
    again.close();

    const auto read = readFileBytes(path("journal.wal"));
    ASSERT_TRUE(read.has_value());
    EXPECT_EQ(*read, "survivor\nappended\n");
}

TEST_F(FsioTest, DurableAppenderOpenFailsOnMissingDirectory)
{
    DurableAppender appender;
    std::string error;
    EXPECT_FALSE(appender.open(
        (dir_ / "absent" / "journal.wal").string(), &error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(appender.isOpen());
}

} // namespace
} // namespace nocalert
