#include "util/bits.hpp"

#include <gtest/gtest.h>

namespace nocalert {
namespace {

TEST(Bits, Popcount)
{
    EXPECT_EQ(popcount(0), 0);
    EXPECT_EQ(popcount(0b1011), 3);
    EXPECT_EQ(popcount(~0ULL), 64);
}

TEST(Bits, OneHot)
{
    EXPECT_FALSE(isOneHot(0));
    EXPECT_TRUE(isOneHot(1));
    EXPECT_TRUE(isOneHot(1ULL << 63));
    EXPECT_FALSE(isOneHot(0b11));
}

TEST(Bits, AtMostOneHot)
{
    EXPECT_TRUE(isAtMostOneHot(0));
    EXPECT_TRUE(isAtMostOneHot(0b100));
    EXPECT_FALSE(isAtMostOneHot(0b101));
}

TEST(Bits, GetSetClearFlip)
{
    std::uint64_t v = 0;
    v = setBit(v, 3);
    EXPECT_TRUE(getBit(v, 3));
    EXPECT_FALSE(getBit(v, 2));
    v = flipBit(v, 2);
    EXPECT_TRUE(getBit(v, 2));
    v = clearBit(v, 3);
    EXPECT_FALSE(getBit(v, 3));
    EXPECT_EQ(v, 0b100u);
}

TEST(Bits, LowestSetBit)
{
    EXPECT_EQ(lowestSetBit(0b1000), 3);
    EXPECT_EQ(lowestSetBit(1), 0);
    EXPECT_EQ(lowestSetBit(0b1010), 1);
}

TEST(Bits, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(3), 0b111u);
    EXPECT_EQ(lowMask(64), ~0ULL);
    EXPECT_EQ(lowMask(65), ~0ULL);
}

TEST(Bits, BitsFor)
{
    EXPECT_EQ(bitsFor(1), 1u);
    EXPECT_EQ(bitsFor(2), 1u);
    EXPECT_EQ(bitsFor(3), 2u);
    EXPECT_EQ(bitsFor(4), 2u);
    EXPECT_EQ(bitsFor(5), 3u);
    EXPECT_EQ(bitsFor(8), 3u);
    EXPECT_EQ(bitsFor(9), 4u);
}

} // namespace
} // namespace nocalert
