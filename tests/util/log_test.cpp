/**
 * FatalThrowScope: the mechanism that lets a long-running service turn
 * fatal() — by contract a *user-input* error — into a catchable
 * exception on the thread that opted in, without changing fatal()'s
 * process-exit semantics anywhere else.
 */

#include "util/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace nocalert {
namespace {

TEST(FatalThrowScope, InactiveByDefault)
{
    EXPECT_FALSE(FatalThrowScope::active());
}

TEST(FatalThrowScope, FatalThrowsInsideScope)
{
    FatalThrowScope scope;
    EXPECT_TRUE(FatalThrowScope::active());
    try {
        NOCALERT_FATAL("bad tenant spec: ", 42);
        FAIL() << "fatal() must not return";
    } catch (const FatalError &error) {
        EXPECT_EQ(std::string(error.what()), "bad tenant spec: 42");
    }
}

TEST(FatalThrowScope, ScopeEndsRestoresExitSemantics)
{
    {
        FatalThrowScope scope;
        EXPECT_TRUE(FatalThrowScope::active());
    }
    EXPECT_FALSE(FatalThrowScope::active());
}

TEST(FatalThrowScope, ScopesNest)
{
    FatalThrowScope outer;
    {
        FatalThrowScope inner;
        EXPECT_TRUE(FatalThrowScope::active());
        EXPECT_THROW(NOCALERT_FATAL("inner"), FatalError);
    }
    // The inner scope's end must not disarm the outer one.
    EXPECT_TRUE(FatalThrowScope::active());
    EXPECT_THROW(NOCALERT_FATAL("outer"), FatalError);
}

TEST(FatalThrowScope, IsThreadLocal)
{
    FatalThrowScope scope;
    // A scope on this thread must not change fatal() semantics for
    // other threads (the service's worker pool keeps exit-on-fatal).
    bool other_thread_active = true;
    std::thread([&other_thread_active] {
        other_thread_active = FatalThrowScope::active();
    }).join();
    EXPECT_FALSE(other_thread_active);
    EXPECT_TRUE(FatalThrowScope::active());
}

TEST(FatalThrowScope, SurvivesRepeatedCatches)
{
    FatalThrowScope scope;
    for (int i = 0; i < 3; ++i)
        EXPECT_THROW(NOCALERT_FATAL("attempt ", i), FatalError);
    EXPECT_TRUE(FatalThrowScope::active());
}

} // namespace
} // namespace nocalert
