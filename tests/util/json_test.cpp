#include "util/json.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace nocalert {
namespace {

TEST(Json, PrimitivesDumpCompactly)
{
    EXPECT_EQ(JsonValue().dump(), "null");
    EXPECT_EQ(JsonValue(nullptr).dump(), "null");
    EXPECT_EQ(JsonValue(true).dump(), "true");
    EXPECT_EQ(JsonValue(false).dump(), "false");
    EXPECT_EQ(JsonValue(42).dump(), "42");
    EXPECT_EQ(JsonValue(-7).dump(), "-7");
    EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
    EXPECT_EQ(JsonValue(JsonValue::Array{}).dump(), "[]");
    EXPECT_EQ(JsonValue(JsonValue::Object{}).dump(), "{}");
}

TEST(Json, IntegersNormalizeAcrossSignedness)
{
    // A uint64 that fits in int64 compares equal to the int64 form,
    // so writer-side types never break round-trip equality.
    EXPECT_EQ(JsonValue(std::uint64_t{5}), JsonValue(std::int64_t{5}));
    EXPECT_EQ(JsonValue(std::uint64_t{5}).type(), JsonValue::Type::Int);

    const auto big = std::numeric_limits<std::uint64_t>::max();
    EXPECT_EQ(JsonValue(big).type(), JsonValue::Type::Uint);
    EXPECT_EQ(JsonValue(big).dump(), "18446744073709551615");
}

TEST(Json, DoublesKeepFractionalMarker)
{
    // Doubles must re-parse as doubles, not integers.
    EXPECT_EQ(JsonValue(1.0).dump(), "1.0");
    EXPECT_EQ(JsonValue(0.05).dump(), "0.05");
    const auto parsed = parseJson(JsonValue(1.0).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type(), JsonValue::Type::Double);
}

TEST(Json, StringEscaping)
{
    const std::string raw = "a\"b\\c\nd\te\x01"
                            "f";
    EXPECT_EQ(JsonValue(raw).dump(),
              "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    const auto parsed = parseJson(JsonValue(raw).dump());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->string(), raw);
}

TEST(Json, ObjectKeepsInsertionOrderAndReplaces)
{
    JsonValue obj;
    obj.set("b", 1);
    obj.set("a", 2);
    obj.set("b", 3); // replace, not append
    EXPECT_EQ(obj.dump(), "{\"b\":3,\"a\":2}");
    ASSERT_NE(obj.find("a"), nullptr);
    EXPECT_EQ(obj.find("a")->asInt(), 2);
    EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(Json, ParseNestedDocument)
{
    const auto parsed = parseJson(
        R"({"list":[1,-2,3.5,true,null,"x"],"nested":{"k":[{}]}})");
    ASSERT_TRUE(parsed.has_value());
    const auto &list = parsed->find("list")->array();
    ASSERT_EQ(list.size(), 6u);
    EXPECT_EQ(list[0].asInt(), 1);
    EXPECT_EQ(list[1].asInt(), -2);
    EXPECT_DOUBLE_EQ(list[2].asDouble(), 3.5);
    EXPECT_TRUE(list[3].boolean());
    EXPECT_TRUE(list[4].isNull());
    EXPECT_EQ(list[5].string(), "x");
    EXPECT_TRUE(parsed->find("nested")->find("k")->array()[0].isObject());
}

TEST(Json, ParseUnicodeEscapes)
{
    const auto parsed = parseJson(R"("\u00e9\ud83d\ude00")");
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->string(), "\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(Json, PrettyDumpRoundTrips)
{
    JsonValue doc;
    doc.set("name", "campaign");
    doc.set("runs", JsonValue(JsonValue::Array{JsonValue(1),
                                               JsonValue(2)}));
    const std::string pretty = doc.dump(2);
    EXPECT_NE(pretty.find("\n  \"name\""), std::string::npos);
    const auto parsed = parseJson(pretty);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, doc);
    // And compact output re-parses to the same value too.
    EXPECT_EQ(*parseJson(doc.dump()), doc);
}

TEST(Json, ParseErrorsCarryOffsets)
{
    std::string error;
    EXPECT_FALSE(parseJson("", &error).has_value());
    EXPECT_NE(error.find("end of input"), std::string::npos);

    error.clear();
    EXPECT_FALSE(parseJson("{\"a\":1} x", &error).has_value());
    EXPECT_NE(error.find("trailing"), std::string::npos);

    for (const char *bad :
         {"{", "[1,", "\"unterminated", "tru", "1.2.3", "-",
          "{\"a\" 1}", "\"\\q\"", "\"\\ud800\""}) {
        EXPECT_FALSE(parseJson(bad).has_value()) << bad;
    }
}

TEST(Json, DeepNestingIsRejectedNotCrashed)
{
    std::string deep(5000, '[');
    deep += std::string(5000, ']');
    std::string error;
    EXPECT_FALSE(parseJson(deep, &error).has_value());
    EXPECT_NE(error.find("nesting"), std::string::npos);
}

TEST(Json, NumbersRoundTripExactly)
{
    for (const std::int64_t value :
         {std::int64_t{0}, std::int64_t{-1},
          std::numeric_limits<std::int64_t>::min(),
          std::numeric_limits<std::int64_t>::max()}) {
        const auto parsed = parseJson(JsonValue(value).dump());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->asInt(), value);
    }
    for (const double value : {0.1, 1e-300, 6.02e23, -2.5}) {
        const auto parsed = parseJson(JsonValue(value).dump());
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->asDouble(), value); // bitwise round-trip
    }
}

} // namespace
} // namespace nocalert
