#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nocalert {
namespace {

TEST(Pcg32, SameSeedSameSequence)
{
    Pcg32 a(123);
    Pcg32 b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1);
    Pcg32 b(2);
    int differences = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() != b.next())
            ++differences;
    EXPECT_GT(differences, 90);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(7, 100);
    Pcg32 b(7, 101);
    int differences = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() != b.next())
            ++differences;
    EXPECT_GT(differences, 90);
}

TEST(Pcg32, CopyPreservesFutureOutput)
{
    Pcg32 a(42);
    for (int i = 0; i < 17; ++i)
        a.next();
    Pcg32 b = a;
    EXPECT_EQ(a, b);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 rng(9);
    for (int i = 0; i < 10000; ++i) {
        const std::uint32_t v = rng.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Pcg32, BoundedCoversAllValues)
{
    Pcg32 rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int v = 0; v < 8; ++v) {
        EXPECT_GT(seen[v], 800) << "value " << v;
        EXPECT_LT(seen[v], 1200) << "value " << v;
    }
}

TEST(Pcg32, RangeInclusive)
{
    Pcg32 rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, BernoulliMatchesProbability)
{
    Pcg32 rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.05) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.05, 0.01);
}

TEST(Pcg32, ReseedResets)
{
    Pcg32 a(21);
    const std::uint32_t first = a.next();
    a.next();
    a.seed(21);
    EXPECT_EQ(a.next(), first);
}

} // namespace
} // namespace nocalert
