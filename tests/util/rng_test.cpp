#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace nocalert {
namespace {

TEST(Pcg32, SameSeedSameSequence)
{
    Pcg32 a(123);
    Pcg32 b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1);
    Pcg32 b(2);
    int differences = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() != b.next())
            ++differences;
    EXPECT_GT(differences, 90);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(7, 100);
    Pcg32 b(7, 101);
    int differences = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() != b.next())
            ++differences;
    EXPECT_GT(differences, 90);
}

TEST(Pcg32, CopyPreservesFutureOutput)
{
    Pcg32 a(42);
    for (int i = 0; i < 17; ++i)
        a.next();
    Pcg32 b = a;
    EXPECT_EQ(a, b);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, BoundedStaysInRange)
{
    Pcg32 rng(9);
    for (int i = 0; i < 10000; ++i) {
        const std::uint32_t v = rng.nextBounded(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Pcg32, BoundedCoversAllValues)
{
    Pcg32 rng(5);
    std::vector<int> seen(8, 0);
    for (int i = 0; i < 8000; ++i)
        ++seen[rng.nextBounded(8)];
    for (int v = 0; v < 8; ++v) {
        EXPECT_GT(seen[v], 800) << "value " << v;
        EXPECT_LT(seen[v], 1200) << "value " << v;
    }
}

TEST(Pcg32, RangeInclusive)
{
    Pcg32 rng(11);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const int v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= v == -3;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Pcg32, DoubleInUnitInterval)
{
    Pcg32 rng(13);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Pcg32, BernoulliMatchesProbability)
{
    Pcg32 rng(17);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.nextBool(0.05) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.05, 0.01);
}

TEST(Pcg32, ReseedResets)
{
    Pcg32 a(21);
    const std::uint32_t first = a.next();
    a.next();
    a.seed(21);
    EXPECT_EQ(a.next(), first);
}

TEST(DeriveStream, MatchesExplicitStreamConstruction)
{
    for (std::uint64_t index : {0ULL, 1ULL, 2ULL, 63ULL, 1000ULL}) {
        Pcg32 derived = deriveStream(42, index);
        Pcg32 explicit_stream(42, kStreamBase + 2 * index);
        EXPECT_EQ(derived, explicit_stream) << "index " << index;
    }
}

TEST(DeriveStream, BitExactWithLegacySerialPath)
{
    // The traffic generator historically built per-node streams as
    // Pcg32(seed, 0x5851f42d4c957f2dULL + 2*n). deriveStream must
    // reproduce that expression exactly, or every archived campaign
    // artifact changes.
    for (std::uint64_t n = 0; n < 16; ++n) {
        Pcg32 derived = deriveStream(3, n);
        Pcg32 legacy(3, 0x5851f42d4c957f2dULL + 2 * n);
        for (int i = 0; i < 64; ++i)
            ASSERT_EQ(derived.next(), legacy.next())
                << "node " << n << " draw " << i;
    }
}

TEST(DeriveStream, FixedVectors)
{
    // Baked outputs pinning the derivation across platforms and
    // refactors. If these change, serialized campaigns change.
    const struct
    {
        std::uint64_t seed;
        std::uint64_t index;
        std::uint32_t expected[4];
    } vectors[] = {
        {3, 0, {0x55a5f2e5u, 0x387609e3u, 0x9336b262u, 0xe72e46b8u}},
        {3, 1, {0xb57e557eu, 0x9bfca012u, 0x447fe1a1u, 0x1aec28f9u}},
        {3, 7, {0xda04ba1bu, 0x018f694fu, 0x16803c56u, 0x933f9b58u}},
        {0xabcdef, 2,
         {0x22154f39u, 0xc302d18au, 0xdc9053a2u, 0xd3427331u}},
    };
    for (const auto &vec : vectors) {
        Pcg32 rng = deriveStream(vec.seed, vec.index);
        for (std::uint32_t expected : vec.expected)
            EXPECT_EQ(rng.next(), expected)
                << "seed " << vec.seed << " index " << vec.index;
    }
}

TEST(DeriveStream, StreamsDoNotOverlap)
{
    // Statistical independence check: sliding 64-bit windows (pairs
    // of consecutive 32-bit draws) from 8 derived streams never
    // collide across streams. A shared or overlapping sequence would
    // produce long identical stretches and hence duplicate windows.
    constexpr int kStreams = 8;
    constexpr int kDraws = 512;
    std::set<std::uint64_t> windows;
    std::size_t inserted = 0;
    for (int s = 0; s < kStreams; ++s) {
        Pcg32 rng = deriveStream(99, static_cast<std::uint64_t>(s));
        std::uint32_t previous = rng.next();
        for (int i = 1; i < kDraws; ++i) {
            const std::uint32_t current = rng.next();
            const std::uint64_t window =
                (static_cast<std::uint64_t>(previous) << 32) | current;
            windows.insert(window);
            ++inserted;
            previous = current;
        }
    }
    EXPECT_EQ(windows.size(), inserted);
}

TEST(SplitMix64, MixesStructuredInputsApart)
{
    // The mixer exists to break up affine (seed, counter) structure
    // before stream derivation: a dense counter range must map to
    // all-distinct, well-scattered outputs.
    std::set<std::uint64_t> outputs;
    for (std::uint64_t x = 0; x < 4096; ++x)
        outputs.insert(splitMix64(x));
    EXPECT_EQ(outputs.size(), 4096u);
    EXPECT_NE(splitMix64(0), 0u);

    // Avalanche on adjacent inputs: flipping the lowest input bit
    // must flip a substantial number of output bits (affine schemes
    // flip one or two).
    for (std::uint64_t x = 1; x <= 64; ++x) {
        const std::uint64_t diff = splitMix64(x) ^ splitMix64(x - 1);
        int bits = 0;
        for (std::uint64_t d = diff; d != 0; d >>= 1)
            bits += static_cast<int>(d & 1);
        EXPECT_GE(bits, 10) << "x=" << x;
    }
}

TEST(SplitMix64, FirstOutputsDecorrelatedAfterMixing)
{
    // Regression for the sampled-planner collision: without mixing,
    // deriveStream(seed, i) and deriveStream(seed + 4, i - 1) produce
    // the same first output. After splitMix64 keying (the planner's
    // construction) the collision family must vanish.
    int raw_collisions = 0;
    int mixed_collisions = 0;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        for (std::uint64_t i = 1; i <= 32; ++i) {
            Pcg32 a = deriveStream(seed, i);
            Pcg32 b = deriveStream(seed + 4, i - 1);
            raw_collisions += a.next() == b.next() ? 1 : 0;

            Pcg32 c = deriveStream(
                splitMix64(splitMix64(seed) ^
                           (i * 0x9e3779b97f4a7c15ULL)),
                i);
            Pcg32 d = deriveStream(
                splitMix64(splitMix64(seed + 4) ^
                           ((i - 1) * 0x9e3779b97f4a7c15ULL)),
                i - 1);
            mixed_collisions += c.next() == d.next() ? 1 : 0;
        }
    }
    // Documents the raw affine weakness (every pair collides) and
    // certifies the mixed derivation breaks it completely.
    EXPECT_EQ(raw_collisions, 32 * 32);
    EXPECT_EQ(mixed_collisions, 0);
}

} // namespace
} // namespace nocalert
