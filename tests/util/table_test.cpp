#include "util/table.hpp"

#include <gtest/gtest.h>

namespace nocalert {
namespace {

TEST(Table, AlignsColumns)
{
    Table t({"a", "long-header"});
    t.addRow({"xxxx", "1"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("| a    | long-header |"), std::string::npos);
    EXPECT_NE(text.find("| xxxx | 1           |"), std::string::npos);
}

TEST(Table, TitleAppears)
{
    Table t({"c"});
    t.setTitle("My Title");
    EXPECT_EQ(t.toText().rfind("My Title\n", 0), 0u);
}

TEST(Table, CsvBasic)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.toCsv(), "x,y\n1,2\n");
}

TEST(Table, CsvQuotesSpecialCells)
{
    Table t({"x"});
    t.addRow({"a,b"});
    t.addRow({"he said \"hi\""});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
    EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::pct(12.345, 1), "12.3%");
}

TEST(Table, ZeroRowTableStillRendersHeaders)
{
    Table t({"col-a", "col-b"});
    const std::string text = t.toText();
    EXPECT_NE(text.find("| col-a | col-b |"), std::string::npos);
    EXPECT_EQ(t.toCsv(), "col-a,col-b\n");
    EXPECT_EQ(t.rowCount(), 0u);
}

TEST(Table, CsvQuotesEmbeddedNewlines)
{
    Table t({"x"});
    t.addRow({"line1\nline2"});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"line1\nline2\""), std::string::npos);
}

TEST(Table, EmptyCellsKeepAlignment)
{
    Table t({"a", "b"});
    t.addRow({"", "wide-cell"});
    t.addRow({"x", ""});
    const std::string text = t.toText();
    EXPECT_NE(text.find("|   | wide-cell |"), std::string::npos);
    EXPECT_NE(text.find("| x |           |"), std::string::npos);
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.rowCount(), 2u);
}

} // namespace
} // namespace nocalert
