#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace nocalert {
namespace {

CommandLine
parse(std::vector<const char *> args, std::vector<std::string> known,
      bool allow_positionals = false)
{
    args.insert(args.begin(), "prog");
    return CommandLine(static_cast<int>(args.size()), args.data(),
                       std::move(known), allow_positionals);
}

TEST(CommandLine, EqualsForm)
{
    const auto cli = parse({"--rate=0.25"}, {"rate"});
    EXPECT_DOUBLE_EQ(cli.getDouble("rate", 0), 0.25);
}

TEST(CommandLine, SpaceForm)
{
    const auto cli = parse({"--sites", "42"}, {"sites"});
    EXPECT_EQ(cli.getInt("sites", 0), 42);
}

TEST(CommandLine, BareSwitch)
{
    const auto cli = parse({"--full"}, {"full"});
    EXPECT_TRUE(cli.getBool("full", false));
    EXPECT_TRUE(cli.has("full"));
}

TEST(CommandLine, DefaultsWhenAbsent)
{
    const auto cli = parse({}, {"x"});
    EXPECT_FALSE(cli.has("x"));
    EXPECT_EQ(cli.getInt("x", 7), 7);
    EXPECT_EQ(cli.getString("x", "d"), "d");
    EXPECT_FALSE(cli.getBool("x", false));
}

TEST(CommandLine, BoolValues)
{
    EXPECT_TRUE(parse({"--f=true"}, {"f"}).getBool("f", false));
    EXPECT_FALSE(parse({"--f=false"}, {"f"}).getBool("f", true));
    EXPECT_TRUE(parse({"--f=1"}, {"f"}).getBool("f", false));
    EXPECT_FALSE(parse({"--f=no"}, {"f"}).getBool("f", true));
}

TEST(CommandLine, UnknownFlagIsFatal)
{
    EXPECT_EXIT(parse({"--oops"}, {"ok"}), testing::ExitedWithCode(1),
                "unknown flag");
}

TEST(CommandLine, BadIntegerIsFatal)
{
    EXPECT_EXIT(parse({"--n=abc"}, {"n"}).getInt("n", 0),
                testing::ExitedWithCode(1), "expects an integer");
}

TEST(CommandLine, SwitchFollowedByFlag)
{
    const auto cli = parse({"--full", "--n", "3"}, {"full", "n"});
    EXPECT_TRUE(cli.getBool("full", false));
    EXPECT_EQ(cli.getInt("n", 0), 3);
}

TEST(CommandLine, PositionalsAreFatalByDefault)
{
    EXPECT_EXIT(parse({"stray.json"}, {"out"}),
                testing::ExitedWithCode(1), "positional");
}

TEST(CommandLine, PositionalsCollectedWhenAllowed)
{
    const auto cli = parse({"a.json", "--out", "m.json", "b.json"},
                           {"out"}, /*allow_positionals=*/true);
    EXPECT_EQ(cli.getString("out", ""), "m.json");
    ASSERT_EQ(cli.positionals().size(), 2u);
    EXPECT_EQ(cli.positionals()[0], "a.json");
    EXPECT_EQ(cli.positionals()[1], "b.json");
}

TEST(CommandLine, ValueFlagStillConsumesNonFlagToken)
{
    // "--out m.json" binds m.json to the flag even in positional mode.
    const auto cli = parse({"--out", "m.json"}, {"out"},
                           /*allow_positionals=*/true);
    EXPECT_EQ(cli.getString("out", ""), "m.json");
    EXPECT_TRUE(cli.positionals().empty());
}

} // namespace
} // namespace nocalert
