#include "util/histogram.hpp"

#include <gtest/gtest.h>

namespace nocalert {
namespace {

TEST(Histogram, EmptyState)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.cdfAt(100), 0.0);
    EXPECT_TRUE(h.points().empty());
}

TEST(Histogram, BasicStats)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(2);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(10, 5);
    h.add(20, 5);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.percentile(0.5), 50);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(1.0), 100);
    EXPECT_EQ(h.percentile(0.01), 1);
}

TEST(Histogram, Cdf)
{
    Histogram h;
    h.add(0, 97);
    h.add(9, 2);
    h.add(28, 1);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.97);
    EXPECT_DOUBLE_EQ(h.cdfAt(8), 0.97);
    EXPECT_DOUBLE_EQ(h.cdfAt(9), 0.99);
    EXPECT_DOUBLE_EQ(h.cdfAt(28), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(-1), 0.0);
}

TEST(Histogram, Merge)
{
    Histogram a;
    a.add(1);
    Histogram b;
    b.add(3, 2);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 3);
}

TEST(Histogram, NegativeValues)
{
    Histogram h;
    h.add(-5);
    h.add(5);
    EXPECT_EQ(h.min(), -5);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, PointsSorted)
{
    Histogram h;
    h.add(7);
    h.add(1);
    h.add(7);
    const auto points = h.points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].first, 1);
    EXPECT_EQ(points[1].first, 7);
    EXPECT_EQ(points[1].second, 2u);
}

} // namespace
} // namespace nocalert
