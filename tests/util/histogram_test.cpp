#include "util/histogram.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace nocalert {
namespace {

TEST(Histogram, EmptyState)
{
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.cdfAt(100), 0.0);
    EXPECT_TRUE(h.points().empty());
}

TEST(Histogram, BasicStats)
{
    Histogram h;
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(2);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.min(), 1);
    EXPECT_EQ(h.max(), 3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
}

TEST(Histogram, WeightedAdd)
{
    Histogram h;
    h.add(10, 5);
    h.add(20, 5);
    EXPECT_EQ(h.count(), 10u);
    EXPECT_DOUBLE_EQ(h.mean(), 15.0);
}

TEST(Histogram, Percentiles)
{
    Histogram h;
    for (int i = 1; i <= 100; ++i)
        h.add(i);
    EXPECT_EQ(h.percentile(0.5), 50);
    EXPECT_EQ(h.percentile(0.99), 99);
    EXPECT_EQ(h.percentile(1.0), 100);
    EXPECT_EQ(h.percentile(0.01), 1);
}

TEST(Histogram, Cdf)
{
    Histogram h;
    h.add(0, 97);
    h.add(9, 2);
    h.add(28, 1);
    EXPECT_DOUBLE_EQ(h.cdfAt(0), 0.97);
    EXPECT_DOUBLE_EQ(h.cdfAt(8), 0.97);
    EXPECT_DOUBLE_EQ(h.cdfAt(9), 0.99);
    EXPECT_DOUBLE_EQ(h.cdfAt(28), 1.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(-1), 0.0);
}

TEST(Histogram, Merge)
{
    Histogram a;
    a.add(1);
    Histogram b;
    b.add(3, 2);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 3);
}

TEST(Histogram, NegativeValues)
{
    Histogram h;
    h.add(-5);
    h.add(5);
    EXPECT_EQ(h.min(), -5);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, MergeEmptyIsIdentity)
{
    Histogram a;
    a.add(4, 3);
    Histogram empty;

    a.merge(empty);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.min(), 4);
    EXPECT_EQ(a.max(), 4);

    // Merging into an empty histogram adopts the other side wholesale.
    empty.merge(a);
    EXPECT_EQ(empty.count(), 3u);
    EXPECT_EQ(empty.min(), 4);
    EXPECT_DOUBLE_EQ(empty.mean(), 4.0);

    // Merging two empties stays empty.
    Histogram e1;
    Histogram e2;
    e1.merge(e2);
    EXPECT_TRUE(e1.empty());
    EXPECT_TRUE(e1.points().empty());
}

TEST(Histogram, MergeOverlappingBucketsAddCounts)
{
    Histogram a;
    a.add(5, 2);
    a.add(9, 1);
    Histogram b;
    b.add(5, 3);
    b.add(1, 1);
    a.merge(b);
    EXPECT_EQ(a.count(), 7u);
    const auto points = a.points();
    ASSERT_EQ(points.size(), 3u);
    EXPECT_EQ(points[0], (std::pair<std::int64_t, std::uint64_t>{1, 1}));
    EXPECT_EQ(points[1], (std::pair<std::int64_t, std::uint64_t>{5, 5}));
    EXPECT_EQ(points[2], (std::pair<std::int64_t, std::uint64_t>{9, 1}));
}

TEST(Histogram, SingleBucketStats)
{
    Histogram h;
    h.add(42, 7);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.min(), 42);
    EXPECT_EQ(h.max(), 42);
    EXPECT_DOUBLE_EQ(h.mean(), 42.0);
    EXPECT_EQ(h.percentile(0.01), 42);
    EXPECT_EQ(h.percentile(1.0), 42);
    EXPECT_DOUBLE_EQ(h.cdfAt(41), 0.0);
    EXPECT_DOUBLE_EQ(h.cdfAt(42), 1.0);
}

TEST(Histogram, ExtremeValueBucket)
{
    // A sentinel overflow bucket at INT64_MAX must survive merge,
    // percentile, and CDF without wrapping.
    constexpr std::int64_t kOverflow =
        std::numeric_limits<std::int64_t>::max();
    Histogram h;
    h.add(1, 99);
    h.add(kOverflow, 1);
    EXPECT_EQ(h.max(), kOverflow);
    EXPECT_EQ(h.percentile(0.99), 1);
    EXPECT_EQ(h.percentile(1.0), kOverflow);
    EXPECT_DOUBLE_EQ(h.cdfAt(kOverflow - 1), 0.99);
    EXPECT_DOUBLE_EQ(h.cdfAt(kOverflow), 1.0);

    Histogram other;
    other.add(kOverflow, 2);
    h.merge(other);
    EXPECT_EQ(h.count(), 102u);
    EXPECT_EQ(h.points().back(),
              (std::pair<std::int64_t, std::uint64_t>{kOverflow, 3}));
}

TEST(Histogram, PointsSorted)
{
    Histogram h;
    h.add(7);
    h.add(1);
    h.add(7);
    const auto points = h.points();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].first, 1);
    EXPECT_EQ(points[1].first, 7);
    EXPECT_EQ(points[1].second, 2u);
}

} // namespace
} // namespace nocalert
