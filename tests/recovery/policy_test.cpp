#include "recovery/policy.hpp"

#include <gtest/gtest.h>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "noc/network.hpp"

namespace nocalert::recovery {
namespace {

core::Assertion
assertion(core::InvariantId id, noc::Cycle cycle, noc::NodeId router = 5,
          int port = 1, int vc = 2)
{
    return {id, cycle, router, port, vc};
}

TEST(RecoveryPolicy, StandardRiskTriggersImmediately)
{
    RecoveryController controller;
    bool fired = false;
    controller.onTrigger([&](const RecoveryEvent &event) {
        fired = true;
        EXPECT_EQ(event.router, 5);
        EXPECT_EQ(event.port, 1);
        EXPECT_EQ(event.vc, 2);
    });
    controller.onAlert(
        assertion(core::InvariantId::ReadFromEmptyBuffer, 100));
    EXPECT_TRUE(controller.triggered());
    EXPECT_TRUE(fired);
    ASSERT_TRUE(controller.trigger().has_value());
    EXPECT_EQ(controller.trigger()->trigger,
              core::InvariantId::ReadFromEmptyBuffer);
}

TEST(RecoveryPolicy, LoneLowRiskStaysCautiousThenDecays)
{
    RecoveryController controller;
    controller.onAlert(assertion(core::InvariantId::IllegalTurn, 100));
    EXPECT_EQ(controller.level(), ResponseLevel::Cautious);
    controller.onCycle(130);
    EXPECT_EQ(controller.level(), ResponseLevel::Cautious);
    controller.onCycle(200); // past the 64-cycle timeout
    EXPECT_EQ(controller.level(), ResponseLevel::None);
    EXPECT_FALSE(controller.triggered());
}

TEST(RecoveryPolicy, CautiousExpiresAtExactTimeoutBoundary)
{
    // Regression: "survives cautiousTimeout cycles" means the state is
    // gone once exactly cautiousTimeout cycles elapsed, not one cycle
    // later.
    RecoveryController controller; // cautiousTimeout 64
    controller.onAlert(assertion(core::InvariantId::IllegalTurn, 100));
    ASSERT_EQ(controller.level(), ResponseLevel::Cautious);
    controller.onCycle(163); // 63 elapsed: still within the window
    EXPECT_EQ(controller.level(), ResponseLevel::Cautious);
    controller.onCycle(164); // exactly 64 elapsed: expired
    EXPECT_EQ(controller.level(), ResponseLevel::None);
    EXPECT_FALSE(controller.triggered());
}

TEST(RecoveryPolicy, LowRiskCorroboratedTriggers)
{
    RecoveryController controller;
    controller.onAlert(assertion(core::InvariantId::NonMinimalRoute, 50));
    EXPECT_EQ(controller.level(), ResponseLevel::Cautious);
    controller.onAlert(
        assertion(core::InvariantId::BufferAtomicityViolation, 55));
    EXPECT_TRUE(controller.triggered());
}

TEST(RecoveryPolicy, LowRiskDeferralCanBeDisabled)
{
    RecoveryConfig config;
    config.deferLowRisk = false;
    RecoveryController controller(config);
    controller.onAlert(assertion(core::InvariantId::IllegalTurn, 10));
    EXPECT_TRUE(controller.triggered());
}

TEST(RecoveryPolicy, GrantToNobodyNeedsPersistence)
{
    RecoveryController controller; // threshold 3
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 10));
    EXPECT_FALSE(controller.triggered());
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 11));
    EXPECT_FALSE(controller.triggered());
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 12));
    EXPECT_TRUE(controller.triggered());
}

TEST(RecoveryPolicy, PersistenceRequiresSameRouter)
{
    RecoveryController controller;
    controller.onAlert(
        assertion(core::InvariantId::GrantToNobody, 10, /*router=*/1));
    controller.onAlert(
        assertion(core::InvariantId::GrantToNobody, 11, /*router=*/2));
    controller.onAlert(
        assertion(core::InvariantId::GrantToNobody, 12, /*router=*/3));
    EXPECT_FALSE(controller.triggered());
}

TEST(RecoveryPolicy, PersistenceWindowExpires)
{
    RecoveryController controller;
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 10));
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 20));
    // A gap beyond the 64-cycle window restarts the count.
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 200));
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 201));
    EXPECT_FALSE(controller.triggered());
    controller.onAlert(assertion(core::InvariantId::GrantToNobody, 202));
    EXPECT_TRUE(controller.triggered());
}

TEST(RecoveryPolicy, TriggerFiresOnce)
{
    RecoveryController controller;
    int fires = 0;
    controller.onTrigger([&](const RecoveryEvent &) { ++fires; });
    controller.onAlert(assertion(core::InvariantId::XbarRowOneHot, 5));
    controller.onAlert(assertion(core::InvariantId::XbarRowOneHot, 6));
    controller.onAlert(
        assertion(core::InvariantId::WriteToFullBuffer, 7));
    EXPECT_EQ(fires, 1);
    EXPECT_EQ(controller.events().size(), 1u);
}

TEST(RecoveryPolicy, ResetAllowsReuse)
{
    RecoveryController controller;
    controller.onAlert(assertion(core::InvariantId::XbarRowOneHot, 5));
    ASSERT_TRUE(controller.triggered());
    controller.reset();
    EXPECT_EQ(controller.level(), ResponseLevel::None);
    controller.onAlert(assertion(core::InvariantId::XbarRowOneHot, 9));
    EXPECT_TRUE(controller.triggered());
}

TEST(RecoveryPolicy, LevelNames)
{
    EXPECT_STREQ(responseLevelName(ResponseLevel::None), "none");
    EXPECT_STREQ(responseLevelName(ResponseLevel::Cautious), "cautious");
    EXPECT_STREQ(responseLevelName(ResponseLevel::Triggered),
                 "triggered");
}

TEST(RecoveryPolicy, EndToEndWithInjectedFault)
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    noc::TrafficSpec traffic;
    traffic.injectionRate = 0.1;
    traffic.seed = 7;

    noc::Network net(config, traffic);
    core::NoCAlertEngine engine(net);
    RecoveryController controller;
    engine.onAlert([&controller](const core::Assertion &a) {
        controller.onAlert(a);
    });
    net.setCycleObserver([&controller](const noc::Network &n) {
        controller.onCycle(n.cycle());
    });

    net.run(200);
    EXPECT_EQ(controller.level(), ResponseLevel::None);

    fault::FaultInjector injector;
    injector.arm({{5, fault::SignalClass::Sa2Grant, 1, -1, 3},
                  net.cycle(),
                  fault::FaultKind::Transient});
    injector.attach(net);
    net.run(100);

    EXPECT_TRUE(controller.triggered());
    ASSERT_TRUE(controller.trigger().has_value());
    EXPECT_EQ(controller.trigger()->router, 5);
}

} // namespace
} // namespace nocalert::recovery
