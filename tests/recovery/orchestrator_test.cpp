/**
 * @file
 * Recovery orchestrator: a policy trigger must turn into in-network
 * quarantine and purge actions, repeated triggers at one router must
 * escalate to whole-router quarantine, and the action cap and the
 * quarantine switch must be honored.
 */

#include "recovery/orchestrator.hpp"

#include <gtest/gtest.h>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "noc/network.hpp"

namespace nocalert::recovery {
namespace {

noc::NetworkConfig
meshConfig()
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    config.routing = noc::RoutingAlgo::QAdaptive;
    config.retransmit.enabled = true;
    return config;
}

noc::TrafficSpec
trafficSpec()
{
    noc::TrafficSpec traffic;
    traffic.injectionRate = 0.1;
    traffic.seed = 7;
    traffic.stopCycle = 400;
    return traffic;
}

/** Network + engine + orchestrator wired the way the campaign does. */
struct Harness
{
    explicit Harness(OrchestratorConfig config = {})
        : net(meshConfig(), trafficSpec()), engine(net),
          orchestrator(net, engine, config)
    {
        net.setCycleObserver([this](const noc::Network &n) {
            orchestrator.onCycleEnd(n.cycle());
        });
    }

    void
    injectAt(noc::Cycle cycle, fault::FaultKind kind)
    {
        injector.arm({{5, fault::SignalClass::Sa2Grant, 1, -1, 3},
                      cycle,
                      kind});
        injector.attach(net);
    }

    noc::Network net;
    core::NoCAlertEngine engine;
    RecoveryOrchestrator orchestrator;
    fault::FaultInjector injector;
};

TEST(Orchestrator, TriggerExecutesQuarantineAndPurge)
{
    Harness h;
    h.net.run(200);
    EXPECT_EQ(h.orchestrator.stats().actions, 0u);
    EXPECT_EQ(h.net.routing().quarantinedCount(), 0u);

    h.injectAt(h.net.cycle(), fault::FaultKind::Transient);
    h.net.run(100);

    const OrchestratorStats &stats = h.orchestrator.stats();
    ASSERT_GE(stats.actions, 1u);
    EXPECT_GE(stats.quarantinedPorts, 1u);
    EXPECT_GE(stats.firstActionCycle, 200);
    EXPECT_GT(h.net.routing().quarantinedCount(), 0u);

    // The recorded action locus is the faulted router.
    ASSERT_EQ(h.orchestrator.actions().size(), stats.actions);
    EXPECT_EQ(h.orchestrator.actions().front().router, 5);
    EXPECT_EQ(h.orchestrator.actions().front().level,
              ResponseLevel::Triggered);
}

TEST(Orchestrator, RepeatedTriggersEscalateToWholeRouter)
{
    Harness h;
    h.net.run(200);
    h.injectAt(h.net.cycle(), fault::FaultKind::Permanent);
    h.net.run(400);

    // A permanent fault outlives the first single-port quarantine and
    // keeps triggering; from the second trigger on the whole router is
    // quarantined — all four mesh ports of router 5 (and the matching
    // neighbor ports), never the Local port.
    ASSERT_GE(h.orchestrator.stats().actions, 2u);
    const noc::RoutingAlgorithm &routing = h.net.routing();
    for (noc::Port port : {noc::Port::North, noc::Port::East,
                           noc::Port::South, noc::Port::West})
        EXPECT_TRUE(routing.isQuarantined(5, noc::portIndex(port)));
    EXPECT_FALSE(routing.isQuarantined(5, noc::portIndex(noc::Port::Local)));
}

TEST(Orchestrator, ActionCapBoundsChurn)
{
    OrchestratorConfig config;
    config.maxActions = 1;
    Harness h(config);
    h.net.run(200);
    h.injectAt(h.net.cycle(), fault::FaultKind::Permanent);
    h.net.run(400);
    // The policy keeps triggering but only one action executes.
    EXPECT_EQ(h.orchestrator.stats().actions, 1u);
    EXPECT_EQ(h.orchestrator.actions().size(), 1u);
}

TEST(Orchestrator, QuarantineCanBeDisabled)
{
    OrchestratorConfig config;
    config.quarantineEnabled = false;
    Harness h(config);
    h.net.run(200);
    h.injectAt(h.net.cycle(), fault::FaultKind::Transient);
    h.net.run(100);
    // Purges still run, but the routing quarantine set stays empty.
    ASSERT_GE(h.orchestrator.stats().actions, 1u);
    EXPECT_EQ(h.orchestrator.stats().quarantinedPorts, 0u);
    EXPECT_EQ(h.net.routing().quarantinedCount(), 0u);
}

} // namespace
} // namespace nocalert::recovery
