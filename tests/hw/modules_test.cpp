#include "hw/modules.hpp"

#include <gtest/gtest.h>

namespace nocalert::hw {
namespace {

noc::NetworkConfig
configWithVcs(unsigned vcs)
{
    noc::NetworkConfig config;
    config.router.numVcs = vcs;
    if (vcs == 1)
        config.router.classes = {{"data", 5}};
    return config;
}

TEST(Modules, ArbiterGrowsSuperLinearly)
{
    const double g4 = arbiterGates(4).total();
    const double g8 = arbiterGates(8).total();
    const double g16 = arbiterGates(16).total();
    EXPECT_GT(g8, 1.9 * g4);
    EXPECT_GT(g16, 2.1 * g8); // the quadratic term kicks in
}

TEST(Modules, FifoDominatedByStorage)
{
    const GateCounts fifo = fifoGates(5, 128);
    EXPECT_GT(fifo.dff, 5 * 128 - 1);
    EXPECT_GT(fifo.dff, fifo.combinational());
}

TEST(Modules, CrossbarQuadraticInPorts)
{
    EXPECT_GT(crossbarGates(10, 64).mux2, 3 * crossbarGates(5, 64).mux2);
}

TEST(Modules, RouterInventoryComplete)
{
    const auto modules = routerModules(configWithVcs(4));
    EXPECT_GE(modules.size(), 7u);
    bool has_buffers = false;
    bool has_va = false;
    for (const ModuleCost &module : modules) {
        if (module.name == "input buffers") {
            has_buffers = true;
            EXPECT_FALSE(module.controlLogic);
        }
        if (module.name == "va allocator") {
            has_va = true;
            EXPECT_TRUE(module.controlLogic);
        }
    }
    EXPECT_TRUE(has_buffers);
    EXPECT_TRUE(has_va);
}

TEST(Modules, NoVaModuleWithoutVcs)
{
    for (const ModuleCost &module : routerModules(configWithVcs(1)))
        EXPECT_NE(module.name, "va allocator");
}

TEST(Modules, BuffersDominateRouterArea)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    const auto modules = routerModules(configWithVcs(4));
    double buffers = 0;
    double total = 0;
    for (const ModuleCost &module : modules) {
        total += lib.areaUm2(module.gates);
        if (module.name == "input buffers")
            buffers = lib.areaUm2(module.gates);
    }
    EXPECT_GT(buffers / total, 0.4); // buffers are the big consumer
}

TEST(Modules, ControlShareGrowsWithVcs)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    auto control_share = [&](unsigned vcs) {
        const auto cfg = configWithVcs(vcs);
        return lib.areaUm2(routerControlLogic(cfg)) /
               lib.areaUm2(routerTotal(cfg));
    };
    // The VA allocator's quadratic growth makes the control plane an
    // increasing fraction of the router as VCs are added — the trend
    // behind DMR-CL's escalating cost in Figure 10.
    EXPECT_LT(control_share(2), control_share(4));
    EXPECT_LT(control_share(4), control_share(8));
}

TEST(Modules, TotalsMatchSumOfModules)
{
    const auto cfg = configWithVcs(4);
    const GateLibrary &lib = GateLibrary::typical65nm();
    double sum = 0;
    for (const ModuleCost &module : routerModules(cfg))
        sum += lib.areaUm2(module.gates);
    EXPECT_NEAR(lib.areaUm2(routerTotal(cfg)), sum, 1e-6);
}

} // namespace
} // namespace nocalert::hw
