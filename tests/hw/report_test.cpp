#include "hw/report.hpp"

#include <gtest/gtest.h>

namespace nocalert::hw {
namespace {

noc::NetworkConfig
configWithVcs(unsigned vcs)
{
    noc::NetworkConfig config;
    config.router.numVcs = vcs;
    return config;
}

TEST(HwReport, PaperFigure10Shape)
{
    // Paper: NoCAlert area overhead 1.38%-4.42% (avg ~3%), roughly
    // flat over 2-8 VCs; DMR-CL grows from ~5.4% to ~31.3%.
    const HwReport r2 = makeHwReport(configWithVcs(2));
    const HwReport r4 = makeHwReport(configWithVcs(4));
    const HwReport r8 = makeHwReport(configWithVcs(8));

    for (const HwReport &r : {r2, r4, r8}) {
        EXPECT_GT(r.nocalertAreaOverheadPct, 0.5);
        EXPECT_LT(r.nocalertAreaOverheadPct, 8.0);
        EXPECT_GT(r.dmrAreaOverheadPct, r.nocalertAreaOverheadPct);
    }
    // DMR escalates with VC count much faster than NoCAlert.
    EXPECT_GT(r8.dmrAreaOverheadPct, 2.5 * r2.dmrAreaOverheadPct);
    EXPECT_LT(r8.nocalertAreaOverheadPct,
              2.5 * r2.nocalertAreaOverheadPct);
    EXPECT_GT(r8.dmrAreaOverheadPct, 15.0);
}

TEST(HwReport, PowerOverheadBelowAreaOverhead)
{
    // Paper: power overhead 0.3%-1.2% — below the area overhead
    // because checkers are unclocked.
    for (unsigned vcs : {2u, 4u, 8u}) {
        const HwReport r = makeHwReport(configWithVcs(vcs));
        EXPECT_LT(r.nocalertPowerOverheadPct, r.nocalertAreaOverheadPct);
        EXPECT_LT(r.nocalertPowerOverheadPct, 2.0);
        EXPECT_GT(r.nocalertPowerOverheadPct, 0.05);
    }
}

TEST(HwReport, CriticalPathImpactTiny)
{
    for (unsigned vcs : {2u, 4u, 8u}) {
        const HwReport r = makeHwReport(configWithVcs(vcs));
        EXPECT_GT(r.criticalPathImpactPct, 0.0);
        EXPECT_LT(r.criticalPathImpactPct, 3.0); // paper: at most 3%
        EXPECT_GT(r.nocalertCriticalPath, r.baselineCriticalPath);
    }
}

TEST(HwReport, CriticalPathGrowsWithVcs)
{
    // More VA2 clients -> deeper allocator -> slower clock.
    EXPECT_GT(criticalPathPs(configWithVcs(8)),
              criticalPathPs(configWithVcs(2)));
}

TEST(HwReport, AreasAreConsistent)
{
    const HwReport r = makeHwReport(configWithVcs(4));
    EXPECT_GT(r.routerArea, r.controlLogicArea);
    EXPECT_GT(r.controlLogicArea, r.nocalertArea);
    EXPECT_GT(r.dmrArea, r.controlLogicArea); // duplication + compare
    EXPECT_NEAR(r.nocalertAreaOverheadPct,
                100.0 * r.nocalertArea / r.routerArea, 1e-9);
}

TEST(HwReport, RouterAreaPlausibleFor65nm)
{
    // A 5-port 4-VC 128-bit router at 65 nm is a few hundred thousand
    // um^2 in published syntheses; the model must be in that decade.
    const HwReport r = makeHwReport(configWithVcs(4));
    EXPECT_GT(r.routerArea, 5e4);
    EXPECT_LT(r.routerArea, 5e6);
}

} // namespace
} // namespace nocalert::hw
