#include "hw/gates.hpp"

#include <gtest/gtest.h>

namespace nocalert::hw {
namespace {

TEST(GateCounts, Arithmetic)
{
    GateCounts a{1, 2, 3, 4, 5, 6};
    GateCounts b{10, 20, 30, 40, 50, 60};
    const GateCounts sum = a + b;
    EXPECT_DOUBLE_EQ(sum.inv, 11);
    EXPECT_DOUBLE_EQ(sum.dff, 66);
    const GateCounts scaled = a * 2.0;
    EXPECT_DOUBLE_EQ(scaled.xor2, 8);
    EXPECT_DOUBLE_EQ(a.combinational(), 15);
    EXPECT_DOUBLE_EQ(a.total(), 21);
}

TEST(GateLibrary, AreaMonotonicInGates)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    GateCounts small{10, 10, 10, 0, 0, 0};
    GateCounts large{10, 10, 10, 0, 0, 100};
    EXPECT_GT(lib.areaUm2(large), lib.areaUm2(small));
    EXPECT_GT(lib.areaUm2(small), 0.0);
}

TEST(GateLibrary, GateEquivalentWeights)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    GateCounts one_dff{0, 0, 0, 0, 0, 1};
    GateCounts one_inv{1, 0, 0, 0, 0, 0};
    // A flip-flop is far larger than an inverter.
    EXPECT_GT(lib.gateEquivalents(one_dff),
              4 * lib.gateEquivalents(one_inv));
}

TEST(GateLibrary, DffsDominatePower)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    GateCounts comb{0, 100, 0, 0, 0, 0};
    GateCounts seq{0, 0, 0, 0, 0, 100};
    // Clock load makes sequential power much higher than equal-GE
    // combinational power: the reason NoCAlert's unclocked checkers
    // have a power share below their area share.
    EXPECT_GT(lib.power(seq), 2 * lib.power(comb));
}

TEST(GateLibrary, PowerScalesWithActivity)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    GateCounts comb{0, 100, 100, 0, 0, 0};
    EXPECT_GT(lib.power(comb, 0.5), lib.power(comb, 0.1));
}

TEST(GateLibrary, ZeroGatesZeroEverything)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    GateCounts none;
    EXPECT_DOUBLE_EQ(lib.areaUm2(none), 0.0);
    EXPECT_DOUBLE_EQ(lib.power(none), 0.0);
}

} // namespace
} // namespace nocalert::hw
