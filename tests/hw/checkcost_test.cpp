#include "hw/checkcost.hpp"

#include <gtest/gtest.h>

#include "hw/modules.hpp"

namespace nocalert::hw {
namespace {

noc::NetworkConfig
configWithVcs(unsigned vcs)
{
    noc::NetworkConfig config;
    config.router.numVcs = vcs;
    if (vcs == 1)
        config.router.classes = {{"data", 5}};
    return config;
}

TEST(CheckerCost, AllCheckersAreCombinational)
{
    const auto cfg = configWithVcs(4);
    for (const CheckerCostRow &row : checkerCostTable(cfg)) {
        EXPECT_DOUBLE_EQ(row.gates.dff, 0.0)
            << core::invariantName(row.id);
        EXPECT_GT(row.gates.combinational(), 0.0)
            << core::invariantName(row.id);
    }
}

TEST(CheckerCost, CheckerMuchCheaperThanCheckedUnit)
{
    // The paper's Figure 4 claim: the grant-without-request checker is
    // linear in clients while the arbiter grows polynomially.
    const auto cfg = configWithVcs(4);
    const GateLibrary &lib = GateLibrary::typical65nm();

    // All arbiter checkers (inv 4-6) vs all allocator hardware.
    double checker_area = 0;
    for (auto id :
         {core::InvariantId::GrantWithoutRequest,
          core::InvariantId::GrantToNobody,
          core::InvariantId::GrantNotOneHot}) {
        checker_area += lib.areaUm2(checkerGates(id, cfg));
    }
    double allocator_area = 0;
    for (const ModuleCost &module : routerModules(cfg))
        if (module.name == "va allocator" || module.name == "sa allocator")
            allocator_area += lib.areaUm2(module.gates);
    EXPECT_LT(checker_area, allocator_area / 2);
}

TEST(CheckerCost, CheckerGrowthIsGentlerThanArbiterGrowth)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    auto ratio = [&](unsigned vcs) {
        const auto cfg = configWithVcs(vcs);
        const double checker = lib.areaUm2(checkerGates(
            core::InvariantId::GrantWithoutRequest, cfg));
        double alloc = 0;
        for (const ModuleCost &module : routerModules(cfg))
            if (module.name == "va allocator" ||
                module.name == "sa allocator")
                alloc += lib.areaUm2(module.gates);
        return checker / alloc;
    };
    // As VCs grow, the checker's share of the allocator shrinks.
    EXPECT_GT(ratio(2), ratio(8));
}

TEST(CheckerCost, AtomicityCheckersFollowBufferMode)
{
    auto atomic_cfg = configWithVcs(4);
    auto rows = checkerCostTable(atomic_cfg);
    auto has = [&](core::InvariantId id) {
        for (const CheckerCostRow &row : rows)
            if (row.id == id)
                return true;
        return false;
    };
    EXPECT_TRUE(has(core::InvariantId::BufferAtomicityViolation));
    EXPECT_FALSE(has(core::InvariantId::NonAtomicPacketMixing));

    atomic_cfg.router.atomicBuffers = false;
    rows = checkerCostTable(atomic_cfg);
    EXPECT_FALSE(has(core::InvariantId::BufferAtomicityViolation));
    EXPECT_TRUE(has(core::InvariantId::NonAtomicPacketMixing));
}

TEST(CheckerCost, VcLessDesignDropsVaCheckers)
{
    const auto rows = checkerCostTable(configWithVcs(1));
    for (const CheckerCostRow &row : rows) {
        EXPECT_NE(row.id, core::InvariantId::VaAgreesWithRc);
        EXPECT_NE(row.id, core::InvariantId::IntraVaStageOrder);
        EXPECT_NE(row.id, core::InvariantId::ConcurrentReadMultipleVcs);
    }
    // But the universal checkers stay.
    bool has_turn = false;
    for (const CheckerCostRow &row : rows)
        has_turn |= row.id == core::InvariantId::IllegalTurn;
    EXPECT_TRUE(has_turn);
}

TEST(CheckerCost, DmrCostsFarMoreThanNoCAlert)
{
    const GateLibrary &lib = GateLibrary::typical65nm();
    for (unsigned vcs : {2u, 4u, 8u}) {
        const auto cfg = configWithVcs(vcs);
        EXPECT_GT(lib.areaUm2(dmrControlLogic(cfg)),
                  2 * lib.areaUm2(nocalertTotal(cfg)))
            << vcs << " VCs";
    }
}

TEST(CheckerCost, TotalIncludesCombiningTree)
{
    const auto cfg = configWithVcs(4);
    const GateCounts total = nocalertTotal(cfg);
    double sum = 0;
    for (const CheckerCostRow &row : checkerCostTable(cfg))
        sum += row.gates.total();
    EXPECT_GT(total.total(), sum); // + the final OR tree
}

} // namespace
} // namespace nocalert::hw
