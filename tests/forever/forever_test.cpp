#include "forever/forever.hpp"

#include <gtest/gtest.h>

#include "fault/injector.hpp"

namespace nocalert::forever {
namespace {

noc::NetworkConfig
mesh()
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

noc::TrafficSpec
traffic(double rate, noc::Cycle stop = -1)
{
    noc::TrafficSpec spec;
    spec.injectionRate = rate;
    spec.stopCycle = stop;
    spec.seed = 31;
    return spec;
}

ForeverConfig
shortEpochs()
{
    ForeverConfig config;
    config.epochLength = 300;
    return config;
}

TEST(Forever, QuietOnHealthyNetwork)
{
    noc::Network net(mesh(), traffic(0.05));
    ForeverModel fever(net, shortEpochs());
    net.run(2500); // several epochs
    EXPECT_TRUE(fever.alerts().empty());
    EXPECT_FALSE(fever.firstDetection().has_value());
}

TEST(Forever, QuietWhenAttachedToWarmNetwork)
{
    noc::Network net(mesh(), traffic(0.05));
    net.run(800); // warm up with traffic in flight
    ForeverModel fever(net, shortEpochs());
    net.run(2000);
    EXPECT_TRUE(fever.alerts().empty());
}

TEST(Forever, CountersReturnToZeroAfterDrain)
{
    noc::Network net(mesh(), traffic(0.05, 500));
    ForeverModel fever(net, shortEpochs());
    net.run(500);
    ASSERT_TRUE(net.drain(3000));
    for (noc::NodeId n = 0; n < net.config().numNodes(); ++n)
        EXPECT_EQ(fever.counter(n), 0) << "node " << n;
}

TEST(Forever, DetectsStrandedFlitsViaEpochCounter)
{
    noc::Network net(mesh(), traffic(0.05));
    net.run(300);
    ForeverConfig config = shortEpochs();
    // Counters only: isolate the epoch-based detection path.
    config.useAllocationComparator = false;
    config.useEndToEnd = false;
    ForeverModel fever(net, config);

    // A stuck-at-zero credit line: router 5 believes every eastbound
    // buffer is permanently full, stranding all traffic through it.
    // No invariance is violated anywhere (nothing illegal is ever
    // output), so this permanent-fault class is exactly where the
    // end-to-end counter scheme earns its keep.
    const noc::Cycle mutation_cycle = net.cycle();
    net.setTapHook([&](noc::Router &router, noc::TapPoint tap,
                       noc::RouterWires &) {
        if (router.node() != 5 || tap != noc::TapPoint::CycleStart)
            return;
        for (unsigned v = 0; v < router.params().numVcs; ++v)
            router.outVcState(noc::portIndex(noc::Port::East), v)
                .credits = 0;
    });

    net.run(2000);
    ASSERT_TRUE(fever.firstDetection().has_value());
    // Epoch-based detection: latency is on the epoch scale, far from
    // instantaneous (the contrast of paper Figure 7).
    EXPECT_GT(*fever.firstDetection() - mutation_cycle, 100);
    bool counter_alert = false;
    for (const ForeverAlert &alert : fever.alerts())
        counter_alert |=
            alert.source == ForeverAlert::Source::CounterEpoch;
    EXPECT_TRUE(counter_alert);
}

TEST(Forever, AllocationComparatorIsInstant)
{
    noc::Network net(mesh(), traffic(0.1));
    net.run(200);
    ForeverModel fever(net, shortEpochs());

    fault::FaultInjector injector;
    // Grant-without-request at an SA1 arbiter: AC territory.
    injector.arm({{5, fault::SignalClass::Sa1Grant, 4, -1, 0},
                  net.cycle() + 3,
                  fault::FaultKind::Permanent});
    net.setTapHook(injector.hook());
    net.run(50);

    ASSERT_FALSE(fever.alerts().empty());
    bool ac = false;
    for (const ForeverAlert &alert : fever.alerts())
        ac |= alert.source == ForeverAlert::Source::AllocationComparator;
    EXPECT_TRUE(ac);
}

TEST(Forever, EndToEndCatchesMisdelivery)
{
    noc::Network net(mesh(), traffic(0.1));
    net.run(100);
    ForeverModel fever(net, shortEpochs());

    // Redirect a transiting packet to the local port of router 5.
    bool mutated = false;
    net.setTapHook([&](noc::Router &router, noc::TapPoint tap,
                       noc::RouterWires &) {
        if (mutated || router.node() != 5 ||
            tap != noc::TapPoint::CycleStart)
            return;
        for (int p = 0; p < noc::kNumPorts - 1; ++p) {
            for (unsigned v = 0; v < 4; ++v) {
                noc::VcRecord &rec = router.vcRecord(p, v);
                const auto &fifo = router.fifo(p, v);
                if (rec.state == noc::VcState::VcAllocWait &&
                    !fifo.empty() && fifo.peek(0).dst != 5) {
                    rec.outPort = noc::portIndex(noc::Port::Local);
                    mutated = true;
                    return;
                }
            }
        }
    });
    net.run(600);
    ASSERT_TRUE(mutated);
    ASSERT_FALSE(fever.alerts().empty());
    bool end_to_end = false;
    for (const ForeverAlert &alert : fever.alerts())
        end_to_end |= alert.source == ForeverAlert::Source::EndToEnd;
    EXPECT_TRUE(end_to_end);
}

TEST(Forever, SourceNames)
{
    EXPECT_STREQ(foreverSourceName(ForeverAlert::Source::CounterEpoch),
                 "counter-epoch");
    EXPECT_STREQ(foreverSourceName(ForeverAlert::Source::EndToEnd),
                 "end-to-end");
}

TEST(Forever, DetectorsCanBeDisabled)
{
    noc::Network net(mesh(), traffic(0.1));
    net.run(100);
    ForeverConfig config = shortEpochs();
    config.useAllocationComparator = false;
    ForeverModel fever(net, config);

    fault::FaultInjector injector;
    injector.arm({{5, fault::SignalClass::Sa1Grant, 4, -1, 0},
                  net.cycle() + 3,
                  fault::FaultKind::Transient});
    net.setTapHook(injector.hook());
    net.run(20);
    for (const ForeverAlert &alert : fever.alerts())
        EXPECT_NE(alert.source,
                  ForeverAlert::Source::AllocationComparator);
}

} // namespace
} // namespace nocalert::forever
