#include "forever/checknet.hpp"

#include <gtest/gtest.h>

namespace nocalert::forever {
namespace {

noc::NetworkConfig
mesh()
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

TEST(CheckerNetwork, ArrivalTimeByHopDistance)
{
    const auto cfg = mesh();
    CheckerNetwork net(cfg, /*hop_latency=*/1);
    // (0,0) -> (3,3) is 6 hops: arrival at 100 + 6 + 1.
    const noc::Cycle arrival =
        net.send(100, cfg.nodeAt({0, 0}), cfg.nodeAt({3, 3}), 5);
    EXPECT_EQ(arrival, 107);
}

TEST(CheckerNetwork, HopLatencyScales)
{
    const auto cfg = mesh();
    CheckerNetwork net(cfg, /*hop_latency=*/3);
    const noc::Cycle arrival = net.send(0, 0, 1, 1);
    EXPECT_EQ(arrival, 4); // 1 hop * 3 + 1
}

TEST(CheckerNetwork, DeliversInOrderUpToNow)
{
    const auto cfg = mesh();
    CheckerNetwork net(cfg, 1);
    net.send(0, 0, 1, 2);                 // arrives 2
    net.send(0, 0, cfg.nodeAt({3, 0}), 7); // arrives 4
    EXPECT_EQ(net.inFlight(), 2u);

    auto early = net.deliverUpTo(1);
    EXPECT_TRUE(early.empty());

    auto first = net.deliverUpTo(2);
    ASSERT_EQ(first.size(), 1u);
    EXPECT_EQ(first[0].dst, 1);
    EXPECT_EQ(first[0].flits, 2u);
    EXPECT_EQ(net.inFlight(), 1u);

    auto second = net.deliverUpTo(10);
    ASSERT_EQ(second.size(), 1u);
    EXPECT_EQ(second[0].flits, 7u);
    EXPECT_EQ(net.inFlight(), 0u);
}

TEST(CheckerNetwork, ManyNotificationsSameCycle)
{
    const auto cfg = mesh();
    CheckerNetwork net(cfg, 1);
    for (int i = 0; i < 10; ++i)
        net.send(0, 0, 1, 1);
    EXPECT_EQ(net.deliverUpTo(2).size(), 10u);
}

} // namespace
} // namespace nocalert::forever
