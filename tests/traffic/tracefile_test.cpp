/**
 * @file
 * Unit tests of the injection-trace file format: round trips, the
 * sort/uniqueness contract, range framing, and the rejection paths
 * for every way a file on disk can be wrong (bad magic, truncation,
 * CRC damage, unsorted records).
 */

#include "traffic/tracefile.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace nocalert::traffic {
namespace {

namespace fs = std::filesystem;

class TraceFileTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_tracefile_" + std::to_string(::getpid()) +
                "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    std::string readBytes(const std::string &file) const
    {
        std::ifstream in(file, std::ios::binary);
        return {std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>()};
    }

    void writeBytes(const std::string &file, const std::string &bytes)
    {
        std::ofstream out(file, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
    }

    fs::path dir_;
};

TEST_F(TraceFileTest, RoundTripSortsAndStampsDigest)
{
    TraceWriter writer;
    // Added out of order on purpose; write() must sort by (cycle, src).
    writer.add({.cycle = 20, .src = 3, .dst = 1, .cls = 0});
    writer.add({.cycle = 5, .src = 0, .dst = 2, .cls = 1});
    writer.add({.cycle = 20, .src = 1, .dst = 0, .cls = 0});
    ASSERT_EQ(writer.size(), 3u);

    const std::string file = path("trace.bin");
    std::string error;
    ASSERT_TRUE(writer.write(file, &error)) << error;

    const auto loaded = readTraceFile(file, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    ASSERT_EQ(loaded->records.size(), 3u);
    EXPECT_EQ(loaded->records[0],
              (TraceRecord{.cycle = 5, .src = 0, .dst = 2, .cls = 1}));
    EXPECT_EQ(loaded->records[1],
              (TraceRecord{.cycle = 20, .src = 1, .dst = 0, .cls = 0}));
    EXPECT_EQ(loaded->records[2],
              (TraceRecord{.cycle = 20, .src = 3, .dst = 1, .cls = 0}));

    EXPECT_NE(loaded->digest, 0u);
    const auto digest = traceFileDigest(file);
    ASSERT_TRUE(digest.has_value());
    EXPECT_EQ(*digest, loaded->digest);
}

TEST_F(TraceFileTest, EmptyTraceRoundTrips)
{
    TraceWriter writer;
    const std::string file = path("empty.bin");
    ASSERT_TRUE(writer.write(file));
    const auto loaded = readTraceFile(file);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->records.empty());
}

TEST_F(TraceFileTest, DuplicateSrcCycleIsRejectedAtWrite)
{
    TraceWriter writer;
    writer.add({.cycle = 7, .src = 2, .dst = 1, .cls = 0});
    writer.add({.cycle = 7, .src = 2, .dst = 3, .cls = 0});
    std::string error;
    EXPECT_FALSE(writer.write(path("dup.bin"), &error));
    EXPECT_NE(error.find("two records for node 2"), std::string::npos)
        << error;
}

TEST_F(TraceFileTest, OutOfRangeFieldsAreRejectedAtWrite)
{
    {
        TraceWriter writer;
        writer.add({.cycle = static_cast<noc::Cycle>(1) << 33,
                    .src = 0,
                    .dst = 1,
                    .cls = 0});
        std::string error;
        EXPECT_FALSE(writer.write(path("cycle.bin"), &error));
        EXPECT_NE(error.find("cycle"), std::string::npos) << error;
    }
    {
        TraceWriter writer;
        writer.add({.cycle = 1, .src = 70000, .dst = 1, .cls = 0});
        std::string error;
        EXPECT_FALSE(writer.write(path("src.bin"), &error));
    }
}

TEST_F(TraceFileTest, MissingFileIsReported)
{
    std::string error;
    EXPECT_FALSE(readTraceFile(path("nope.bin"), &error).has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(traceFileDigest(path("nope.bin")).has_value());
}

TEST_F(TraceFileTest, BadMagicIsRejected)
{
    TraceWriter writer;
    writer.add({.cycle = 1, .src = 0, .dst = 1, .cls = 0});
    const std::string file = path("magic.bin");
    ASSERT_TRUE(writer.write(file));

    std::string bytes = readBytes(file);
    bytes[0] = 'X';
    writeBytes(file, bytes);

    std::string error;
    EXPECT_FALSE(readTraceFile(file, &error).has_value());
    EXPECT_NE(error.find("magic"), std::string::npos) << error;
}

TEST_F(TraceFileTest, TruncatedFileIsRejected)
{
    TraceWriter writer;
    writer.add({.cycle = 1, .src = 0, .dst = 1, .cls = 0});
    writer.add({.cycle = 2, .src = 1, .dst = 0, .cls = 0});
    const std::string file = path("trunc.bin");
    ASSERT_TRUE(writer.write(file));

    std::string bytes = readBytes(file);
    bytes.resize(bytes.size() - 5);
    writeBytes(file, bytes);

    std::string error;
    EXPECT_FALSE(readTraceFile(file, &error).has_value());
    EXPECT_FALSE(error.empty());
}

TEST_F(TraceFileTest, PayloadCorruptionFailsTheCrc)
{
    TraceWriter writer;
    writer.add({.cycle = 9, .src = 0, .dst = 1, .cls = 0});
    const std::string file = path("crc.bin");
    ASSERT_TRUE(writer.write(file));

    std::string bytes = readBytes(file);
    bytes[16] = static_cast<char>(bytes[16] ^ 0x40); // first record byte
    writeBytes(file, bytes);

    std::string error;
    EXPECT_FALSE(readTraceFile(file, &error).has_value());
    EXPECT_NE(error.find("CRC"), std::string::npos) << error;
}

TEST_F(TraceFileTest, DigestChangesWithContent)
{
    TraceWriter a;
    a.add({.cycle = 1, .src = 0, .dst = 1, .cls = 0});
    TraceWriter b;
    b.add({.cycle = 1, .src = 0, .dst = 2, .cls = 0});
    ASSERT_TRUE(a.write(path("a.bin")));
    ASSERT_TRUE(b.write(path("b.bin")));
    EXPECT_NE(*traceFileDigest(path("a.bin")),
              *traceFileDigest(path("b.bin")));
}

} // namespace
} // namespace nocalert::traffic
