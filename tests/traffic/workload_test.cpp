/**
 * @file
 * Unit battery for the workload engine: spec validation (every error
 * names the bad field), the CLI phase-program / burst parsers, the
 * counter-mode purity of the phased backend (skipping idle cycles is
 * unobservable), the burst modulator's hash determinism, and the
 * record -> replay loop of the trace backend.
 */

#include "traffic/workload.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace nocalert::traffic {
namespace {

namespace fs = std::filesystem;

noc::NetworkConfig
mesh4()
{
    noc::NetworkConfig config;
    config.width = 4;
    config.height = 4;
    return config;
}

PhasedSpec
twoPhases()
{
    PhasedSpec spec;
    spec.segments.push_back({.begin = 0,
                             .end = 100,
                             .pattern = noc::TrafficPattern::UniformRandom,
                             .rate = 0.1,
                             .classWeights = {},
                             .hotspot = {}});
    spec.segments.push_back({.begin = 150,
                             .end = 300,
                             .pattern = noc::TrafficPattern::Transpose,
                             .rate = 0.2,
                             .classWeights = {},
                             .hotspot = {}});
    spec.seed = 7;
    return spec;
}

WorkloadSpec
phasedWorkload()
{
    WorkloadSpec workload;
    workload.kind = WorkloadKind::Phased;
    workload.phased = twoPhases();
    return workload;
}

// ---- names ----

TEST(WorkloadKindNames, RoundTrip)
{
    for (const WorkloadKind kind :
         {WorkloadKind::Synthetic, WorkloadKind::Phased,
          WorkloadKind::Trace}) {
        const auto back = workloadKindFromName(workloadKindName(kind));
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, kind);
    }
    EXPECT_FALSE(workloadKindFromName("mystery").has_value());
}

// ---- validation: every rejection names the offending field ----

TEST(WorkloadValidation, SyntheticErrorsNameTheField)
{
    WorkloadSpec workload;
    workload.synthetic.injectionRate = 1.5;
    std::string error = validateWorkloadSpec(mesh4(), workload);
    EXPECT_NE(error.find("injectionRate"), std::string::npos) << error;

    workload.synthetic.injectionRate = 0.1;
    workload.synthetic.pattern = noc::TrafficPattern::Hotspot;
    workload.synthetic.hotspot.node = 99;
    error = validateWorkloadSpec(mesh4(), workload);
    EXPECT_NE(error.find("hotspot.node"), std::string::npos) << error;
}

TEST(WorkloadValidation, PhasedErrorsNameSegmentAndField)
{
    WorkloadSpec workload = phasedWorkload();
    EXPECT_EQ(validateWorkloadSpec(mesh4(), workload), "");

    // Empty program.
    workload.phased.segments.clear();
    EXPECT_NE(validateWorkloadSpec(mesh4(), workload)
                  .find("phased.segments"),
              std::string::npos);

    // end <= begin.
    workload = phasedWorkload();
    workload.phased.segments[1].end = workload.phased.segments[1].begin;
    std::string error = validateWorkloadSpec(mesh4(), workload);
    EXPECT_NE(error.find("segments[1].end"), std::string::npos) << error;

    // Overlap.
    workload = phasedWorkload();
    workload.phased.segments[1].begin = 50;
    error = validateWorkloadSpec(mesh4(), workload);
    EXPECT_NE(error.find("overlaps"), std::string::npos) << error;

    // Per-segment traffic fields reuse the TrafficSpec validator,
    // prefixed with the segment path.
    workload = phasedWorkload();
    workload.phased.segments[0].rate = -0.5;
    error = validateWorkloadSpec(mesh4(), workload);
    EXPECT_NE(error.find("segments[0].rate"), std::string::npos) << error;

    workload = phasedWorkload();
    workload.phased.segments[0].classWeights = {1.0};
    error = validateWorkloadSpec(mesh4(), workload);
    EXPECT_NE(error.find("classWeights"), std::string::npos) << error;
}

TEST(WorkloadValidation, BurstErrorsNameTheField)
{
    WorkloadSpec workload = phasedWorkload();
    workload.phased.burst.enabled = true;
    workload.phased.burst.period = 0;
    EXPECT_NE(validateWorkloadSpec(mesh4(), workload)
                  .find("burst.period"),
              std::string::npos);

    workload.phased.burst.period = 32;
    workload.phased.burst.onProbability = 1.5;
    EXPECT_NE(validateWorkloadSpec(mesh4(), workload)
                  .find("burst.onProbability"),
              std::string::npos);

    workload.phased.burst.onProbability = 0.5;
    workload.phased.burst.layers = 0;
    EXPECT_NE(validateWorkloadSpec(mesh4(), workload)
                  .find("burst.layers"),
              std::string::npos);
}

TEST(WorkloadValidation, TraceErrorsNameTheField)
{
    WorkloadSpec workload;
    workload.kind = WorkloadKind::Trace;
    EXPECT_NE(validateWorkloadSpec(mesh4(), workload).find("trace.path"),
              std::string::npos);

    workload.trace.path = "whatever.bin";
    workload.trace.stopCycle = -7;
    EXPECT_NE(validateWorkloadSpec(mesh4(), workload)
                  .find("trace.stopCycle"),
              std::string::npos);
}

// ---- CLI parsers ----

TEST(PhaseProgramParser, ParsesSegmentsAndHotspot)
{
    PhasedSpec spec;
    const std::string error = parsePhaseProgram(
        "0:2000:uniform:0.05,2000:4000:hotspot:0.1:5:0.4", spec);
    ASSERT_EQ(error, "");
    ASSERT_EQ(spec.segments.size(), 2u);
    EXPECT_EQ(spec.segments[0].begin, 0);
    EXPECT_EQ(spec.segments[0].end, 2000);
    EXPECT_EQ(spec.segments[0].pattern,
              noc::TrafficPattern::UniformRandom);
    EXPECT_DOUBLE_EQ(spec.segments[0].rate, 0.05);
    EXPECT_EQ(spec.segments[1].pattern, noc::TrafficPattern::Hotspot);
    EXPECT_EQ(spec.segments[1].hotspot.node, 5);
    EXPECT_DOUBLE_EQ(spec.segments[1].hotspot.fraction, 0.4);
}

TEST(PhaseProgramParser, ErrorsNameSegmentAndField)
{
    PhasedSpec spec;
    std::string error = parsePhaseProgram("", spec);
    EXPECT_NE(error.find("at least one segment"), std::string::npos)
        << error;

    error = parsePhaseProgram("0:100:uniform", spec);
    EXPECT_NE(error.find("phase segment 0"), std::string::npos) << error;

    error = parsePhaseProgram("0:100:uniform:0.05,100:200:warp:0.1",
                              spec);
    EXPECT_NE(error.find("phase segment 1"), std::string::npos) << error;
    EXPECT_NE(error.find("warp"), std::string::npos) << error;

    error = parsePhaseProgram("0:100:uniform:fast", spec);
    EXPECT_NE(error.find("rate 'fast'"), std::string::npos) << error;
}

TEST(BurstSpecParser, RoundTripAndErrors)
{
    BurstSpec burst;
    ASSERT_EQ(parseBurstSpec("64:0.5:2:0:3", burst), "");
    EXPECT_TRUE(burst.enabled);
    EXPECT_EQ(burst.period, 64);
    EXPECT_DOUBLE_EQ(burst.onProbability, 0.5);
    EXPECT_DOUBLE_EQ(burst.onMultiplier, 2.0);
    EXPECT_DOUBLE_EQ(burst.offMultiplier, 0.0);
    EXPECT_EQ(burst.layers, 3u);

    BurstSpec defaults;
    ASSERT_EQ(parseBurstSpec("32:0.25:4:0.5", defaults), "");
    EXPECT_EQ(defaults.layers, 1u);

    BurstSpec bad;
    EXPECT_NE(parseBurstSpec("64:0.5", bad).find("burst spec"),
              std::string::npos);
    EXPECT_NE(parseBurstSpec("x:0.5:2:0", bad).find("period"),
              std::string::npos);
}

// ---- the phase schedule ----

TEST(PhaseSchedule, SegmentLookupHandlesGapsStopAndRepeat)
{
    PhasedSpec spec = twoPhases(); // [0,100) and [150,300)
    EXPECT_EQ(phaseSegmentAt(spec, 0), 0);
    EXPECT_EQ(phaseSegmentAt(spec, 99), 0);
    EXPECT_EQ(phaseSegmentAt(spec, 100), -1); // gap
    EXPECT_EQ(phaseSegmentAt(spec, 149), -1);
    EXPECT_EQ(phaseSegmentAt(spec, 150), 1);
    EXPECT_EQ(phaseSegmentAt(spec, 299), 1);
    EXPECT_EQ(phaseSegmentAt(spec, 300), -1); // past the program

    spec.repeat = true;
    EXPECT_EQ(phaseSegmentAt(spec, 300), 0); // wraps to cycle 0
    EXPECT_EQ(phaseSegmentAt(spec, 399), 0);
    EXPECT_EQ(phaseSegmentAt(spec, 450), 1);
    EXPECT_EQ(phaseSegmentAt(spec, 430), -1); // wrapped gap

    spec.stopCycle = 320;
    EXPECT_EQ(phaseSegmentAt(spec, 319), 0);
    EXPECT_EQ(phaseSegmentAt(spec, 320), -1); // stopped
}

// ---- the phased backend ----

TEST(PhasedBackend, IdleAtImpliesNoPacketAnywhere)
{
    const noc::NetworkConfig config = mesh4();
    PhasedGenerator gen(config, twoPhases());
    for (noc::Cycle cycle = 0; cycle < 350; ++cycle) {
        if (!gen.idleAt(cycle))
            continue;
        for (noc::NodeId node = 0; node < config.numNodes(); ++node)
            EXPECT_FALSE(gen.generate(config, node, cycle).has_value())
                << "cycle " << cycle << " node " << node;
    }
}

TEST(PhasedBackend, SkippingIdleCyclesIsUnobservable)
{
    // The active-set kernels skip whole cycles where idleAt() is true;
    // the packets generated afterwards must be bit-identical to a
    // dense sweep that calls generate() on every cycle regardless.
    const noc::NetworkConfig config = mesh4();
    PhasedGenerator dense(config, twoPhases());
    PhasedGenerator skipping(config, twoPhases());

    for (noc::Cycle cycle = 0; cycle < 350; ++cycle) {
        const bool idle = skipping.idleAt(cycle);
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const auto a = dense.generate(config, node, cycle);
            const std::optional<noc::Packet> b =
                idle ? std::optional<noc::Packet>()
                     : skipping.generate(config, node, cycle);
            ASSERT_EQ(a.has_value(), b.has_value())
                << "cycle " << cycle << " node " << node;
            if (a) {
                EXPECT_EQ(a->id, b->id);
                EXPECT_EQ(a->dst, b->dst);
                EXPECT_EQ(a->msgClass, b->msgClass);
            }
        }
    }
    EXPECT_EQ(dense.packetsCreated(), skipping.packetsCreated());
    EXPECT_GT(dense.packetsCreated(), 0u);
}

TEST(PhasedBackend, NodeOrderIsIrrelevant)
{
    // Counter-mode draws: each (node, cycle) has a private stream, so
    // visiting nodes in reverse produces the same packets.
    const noc::NetworkConfig config = mesh4();
    PhasedGenerator forward(config, twoPhases());
    PhasedGenerator backward(config, twoPhases());

    for (noc::Cycle cycle = 0; cycle < 300; ++cycle) {
        std::vector<std::optional<noc::Packet>> a(
            static_cast<std::size_t>(config.numNodes()));
        std::vector<std::optional<noc::Packet>> b(a.size());
        for (noc::NodeId n = 0; n < config.numNodes(); ++n)
            a[static_cast<std::size_t>(n)] =
                forward.generate(config, n, cycle);
        for (noc::NodeId n = config.numNodes() - 1; n >= 0; --n)
            b[static_cast<std::size_t>(n)] =
                backward.generate(config, n, cycle);
        for (std::size_t n = 0; n < a.size(); ++n) {
            ASSERT_EQ(a[n].has_value(), b[n].has_value());
            if (a[n]) {
                EXPECT_EQ(a[n]->id, b[n]->id);
                EXPECT_EQ(a[n]->dst, b[n]->dst);
            }
        }
    }
}

TEST(PhasedBackend, SegmentPatternsAreHonored)
{
    // A transpose phase must only emit transpose destinations.
    const noc::NetworkConfig config = mesh4();
    PhasedSpec spec = twoPhases();
    PhasedGenerator gen(config, spec);
    std::uint64_t transposed = 0;
    for (noc::Cycle cycle = 150; cycle < 300; ++cycle) {
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const auto pkt = gen.generate(config, node, cycle);
            if (!pkt)
                continue;
            const int x = node % config.width;
            const int y = node / config.width;
            EXPECT_EQ(pkt->dst, x * config.width + y);
            ++transposed;
        }
    }
    EXPECT_GT(transposed, 0u);
}

TEST(PhasedBackend, BurstMultiplierIsAPureHash)
{
    const noc::NetworkConfig config = mesh4();
    PhasedSpec spec = twoPhases();
    spec.burst.enabled = true;
    spec.burst.period = 16;
    spec.burst.onProbability = 0.5;
    spec.burst.onMultiplier = 3.0;
    spec.burst.offMultiplier = 0.25;
    spec.burst.layers = 2;

    PhasedGenerator a(config, spec);
    PhasedGenerator b(config, spec);
    bool saw_on = false;
    bool saw_off = false;
    for (noc::Cycle cycle = 0; cycle < 300; ++cycle) {
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const double m = a.burstMultiplier(node, cycle);
            EXPECT_EQ(m, b.burstMultiplier(node, cycle));
            // Two layers, each contributing x3 or x0.25.
            EXPECT_TRUE(m == 9.0 || m == 0.75 || m == 0.0625)
                << "multiplier " << m;
            saw_on |= m == 9.0;
            saw_off |= m == 0.0625;
        }
    }
    EXPECT_TRUE(saw_on);
    EXPECT_TRUE(saw_off);

    // Within one epoch the multiplier is constant per (node, layer).
    EXPECT_EQ(a.burstMultiplier(3, 0), a.burstMultiplier(3, 15));

    // Disabled bursts multiply by exactly 1.
    PhasedGenerator plain(config, twoPhases());
    EXPECT_EQ(plain.burstMultiplier(0, 42), 1.0);
}

TEST(PhasedBackend, ExtremeBurstProbabilitiesPinTheMultiplier)
{
    const noc::NetworkConfig config = mesh4();
    PhasedSpec spec = twoPhases();
    spec.burst.enabled = true;
    spec.burst.period = 8;
    spec.burst.onMultiplier = 2.0;
    spec.burst.offMultiplier = 0.5;
    spec.burst.layers = 1;

    spec.burst.onProbability = 1.0;
    PhasedGenerator always_on(config, spec);
    spec.burst.onProbability = 0.0;
    PhasedGenerator always_off(config, spec);
    for (noc::Cycle cycle = 0; cycle < 64; ++cycle) {
        EXPECT_EQ(always_on.burstMultiplier(1, cycle), 2.0);
        EXPECT_EQ(always_off.burstMultiplier(1, cycle), 0.5);
    }
}

// ---- record -> replay ----

class RecordReplay : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        dir_ = fs::temp_directory_path() /
               ("nocalert_workload_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        fs::create_directories(dir_);
    }

    void TearDown() override
    {
        std::error_code ec;
        fs::remove_all(dir_, ec);
    }

    std::string path(const std::string &name) const
    {
        return (dir_ / name).string();
    }

    fs::path dir_;
};

TEST_F(RecordReplay, ReplayEqualsTheRecordedWorkload)
{
    const noc::NetworkConfig config = mesh4();
    noc::TrafficSpec synthetic;
    synthetic.injectionRate = 0.1;
    synthetic.seed = 11;
    const WorkloadSpec original = WorkloadSpec::fromSynthetic(synthetic);

    const std::string file = path("run.trace");
    std::string error;
    ASSERT_TRUE(recordTrace(config, original, 250, file, &error))
        << error;

    WorkloadSpec replay;
    replay.kind = WorkloadKind::Trace;
    replay.trace.path = file;
    ASSERT_TRUE(stampTraceSpec(replay.trace, &error)) << error;
    EXPECT_NE(replay.trace.digest, 0u);
    EXPECT_GT(replay.trace.records, 0u);

    WorkloadGenerator a(config, original);
    WorkloadGenerator b(config, replay);
    for (noc::Cycle cycle = 0; cycle < 250; ++cycle) {
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const auto pa = a.generate(config, node, cycle);
            const auto pb = b.generate(config, node, cycle);
            ASSERT_EQ(pa.has_value(), pb.has_value())
                << "cycle " << cycle << " node " << node;
            if (pa) {
                EXPECT_EQ(pa->dst, pb->dst);
                EXPECT_EQ(pa->msgClass, pb->msgClass);
                EXPECT_EQ(pa->src, pb->src);
            }
        }
    }
    EXPECT_EQ(a.packetsCreated(), b.packetsCreated());
    EXPECT_EQ(b.packetsCreated(), replay.trace.records);
}

TEST_F(RecordReplay, TraceIdleCyclesAreSkippable)
{
    const noc::NetworkConfig config = mesh4();
    WorkloadSpec workload = phasedWorkload();
    const std::string file = path("phased.trace");
    ASSERT_TRUE(recordTrace(config, workload, 300, file));

    WorkloadSpec replay;
    replay.kind = WorkloadKind::Trace;
    replay.trace.path = file;
    ASSERT_TRUE(stampTraceSpec(replay.trace));

    WorkloadGenerator dense(config, replay);
    WorkloadGenerator skipping(config, replay);
    bool skipped_some = false;
    for (noc::Cycle cycle = 0; cycle < 300; ++cycle) {
        const bool idle = skipping.idleAt(cycle);
        skipped_some |= idle;
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const auto a = dense.generate(config, node, cycle);
            if (idle) {
                EXPECT_FALSE(a.has_value());
                continue;
            }
            const auto b = skipping.generate(config, node, cycle);
            ASSERT_EQ(a.has_value(), b.has_value());
            if (a) {
                EXPECT_EQ(a->dst, b->dst);
            }
        }
    }
    // The phase gap [100,150) must be skippable in the replay too.
    EXPECT_TRUE(skipped_some);
    EXPECT_EQ(dense.packetsCreated(), skipping.packetsCreated());
}

TEST_F(RecordReplay, StampRejectsAPinnedDigestMismatch)
{
    const noc::NetworkConfig config = mesh4();
    noc::TrafficSpec synthetic;
    synthetic.injectionRate = 0.1;
    const std::string file = path("pin.trace");
    ASSERT_TRUE(recordTrace(config, WorkloadSpec::fromSynthetic(synthetic),
                            100, file));

    TraceSpec spec;
    spec.path = file;
    ASSERT_TRUE(stampTraceSpec(spec));

    spec.digest ^= 1; // caller pins a *different* trace
    std::string error;
    EXPECT_FALSE(stampTraceSpec(spec, &error));
    EXPECT_NE(error.find("digest mismatch"), std::string::npos) << error;
}

TEST_F(RecordReplay, ReplayRejectsRecordsOutsideTheMesh)
{
    // A trace recorded for a bigger mesh names nodes a 4x4 run does
    // not have; generator construction must refuse it loudly.
    TraceWriter writer;
    writer.add({.cycle = 1, .src = 0, .dst = 63, .cls = 0});
    const std::string file = path("big.trace");
    ASSERT_TRUE(writer.write(file));

    WorkloadSpec replay;
    replay.kind = WorkloadKind::Trace;
    replay.trace.path = file;
    ASSERT_TRUE(stampTraceSpec(replay.trace));

    const noc::NetworkConfig config = mesh4();
    EXPECT_DEATH(WorkloadGenerator(config, replay),
                 "but the mesh has 16 nodes");
}

TEST_F(RecordReplay, CopiedGeneratorResumesFromItsExactPosition)
{
    // The campaign copies a warmed network (and with it the workload
    // generator); the copy must continue the replay from the same
    // cursor, not restart it.
    const noc::NetworkConfig config = mesh4();
    noc::TrafficSpec synthetic;
    synthetic.injectionRate = 0.15;
    synthetic.seed = 5;
    const std::string file = path("resume.trace");
    ASSERT_TRUE(recordTrace(config, WorkloadSpec::fromSynthetic(synthetic),
                            200, file));

    WorkloadSpec replay;
    replay.kind = WorkloadKind::Trace;
    replay.trace.path = file;
    ASSERT_TRUE(stampTraceSpec(replay.trace));

    WorkloadGenerator straight(config, replay);
    WorkloadGenerator first_half(config, replay);
    for (noc::Cycle cycle = 0; cycle < 100; ++cycle)
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            straight.generate(config, node, cycle);
            first_half.generate(config, node, cycle);
        }

    WorkloadGenerator resumed(first_half); // the snapshot copy
    for (noc::Cycle cycle = 100; cycle < 200; ++cycle)
        for (noc::NodeId node = 0; node < config.numNodes(); ++node) {
            const auto a = straight.generate(config, node, cycle);
            const auto b = resumed.generate(config, node, cycle);
            ASSERT_EQ(a.has_value(), b.has_value());
            if (a) {
                EXPECT_EQ(a->dst, b->dst);
                EXPECT_EQ(a->id, b->id);
            }
        }
    EXPECT_EQ(straight.packetsCreated(), resumed.packetsCreated());
}

// ---- WorkloadSpec plumbing ----

TEST(WorkloadSpecPlumbing, SeedAndStopCycleTrackTheActiveBackend)
{
    WorkloadSpec synthetic;
    synthetic.synthetic.seed = 42;
    EXPECT_EQ(synthetic.seed(), 42u);
    synthetic.setStopCycle(500);
    EXPECT_EQ(synthetic.stopCycle(), 500);
    EXPECT_EQ(synthetic.synthetic.stopCycle, 500);

    WorkloadSpec phased = phasedWorkload();
    phased.setSeed(9);
    EXPECT_EQ(phased.seed(), 9u);
    phased.setStopCycle(123);
    EXPECT_EQ(phased.phased.stopCycle, 123);

    WorkloadSpec trace;
    trace.kind = WorkloadKind::Trace;
    trace.setSeed(77); // no-op: replay draws nothing
    EXPECT_EQ(trace.seed(), 0u);
    trace.setStopCycle(64);
    EXPECT_EQ(trace.trace.stopCycle, 64);
}

} // namespace
} // namespace nocalert::traffic
