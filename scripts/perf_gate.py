#!/usr/bin/env python3
"""Kernel perf-regression gate over BENCH_kernel.json artifacts.

Compares a freshly measured micro_kernel sweep against the committed
baseline sweep rate by rate. Raw wall-clock numbers are useless across
CI machines, so the gate compares *speedup ratios* — active-vs-dense
("speedup") and bitmask-vs-active ("bitmaskSpeedup") — which are
dimensionless and measured within a single process on one machine.

The gate fails when:
  * any kernel pair ever disagreed ("identical" false anywhere), or
  * at any rate present in both sweeps, a fresh speedup falls below
    (1 - tolerance) * baseline speedup, or
  * a rate or speedup key present in the baseline is missing fresh
    (a silently dropped kernel must not pass).

--self-test proves the gate can actually fail: it doctors the
baseline into a fabricated regression (and separately into a
disagreement), runs the same gate logic, and exits non-zero unless
both doctored inputs are rejected and the undoctored input passes.

Usage:
  perf_gate.py BASELINE FRESH [--tolerance 0.30]
  perf_gate.py BASELINE --self-test [--tolerance 0.30]
"""

import argparse
import copy
import json
import sys

SPEEDUP_KEYS = ("speedup", "bitmaskSpeedup")


def load(path):
    with open(path) as f:
        return json.load(f)


def gate(baseline, fresh, tolerance):
    """Return a list of failure strings (empty = pass)."""
    failures = []
    if not fresh.get("identical", False):
        failures.append("fresh sweep: kernels disagreed on some run "
                        "('identical' is not true)")

    fresh_by_rate = {e["rate"]: e for e in fresh.get("sweep", [])}
    compared = 0
    for base_entry in baseline.get("sweep", []):
        rate = base_entry["rate"]
        fresh_entry = fresh_by_rate.get(rate)
        if fresh_entry is None:
            failures.append(f"rate {rate}: present in baseline, "
                            "missing from fresh sweep")
            continue
        if not fresh_entry.get("identical", False):
            failures.append(f"rate {rate}: kernels disagreed")
        for key in SPEEDUP_KEYS:
            if key not in base_entry:
                continue  # baseline predates this kernel
            if key not in fresh_entry:
                failures.append(f"rate {rate}: '{key}' missing from "
                                "fresh sweep")
                continue
            base_val = base_entry[key]
            fresh_val = fresh_entry[key]
            floor = base_val * (1.0 - tolerance)
            verdict = "ok" if fresh_val >= floor else "REGRESSION"
            print(f"rate {rate}: {key} fresh {fresh_val:.2f}x vs "
                  f"baseline {base_val:.2f}x (floor {floor:.2f}x) "
                  f"[{verdict}]")
            if fresh_val < floor:
                failures.append(
                    f"rate {rate}: {key} regressed to {fresh_val:.2f}x, "
                    f"below {floor:.2f}x "
                    f"(baseline {base_val:.2f}x - {tolerance:.0%})")
            compared += 1
    if compared == 0:
        failures.append("no comparable (rate, speedup) pairs between "
                        "baseline and fresh sweeps")
    return failures


def self_test(baseline, tolerance):
    """Exit 0 iff the gate passes the baseline against itself AND
    rejects two injected defects (slowdown, disagreement)."""
    clean = gate(baseline, copy.deepcopy(baseline), tolerance)
    if clean:
        print("self-test FAILED: baseline does not pass against "
              "itself:", *clean, sep="\n  ")
        return 1

    slow = copy.deepcopy(baseline)
    for entry in slow["sweep"]:
        for key in SPEEDUP_KEYS:
            if key in entry:
                entry[key] *= (1.0 - tolerance) * 0.5
    if not gate(baseline, slow, tolerance):
        print("self-test FAILED: injected slowdown was not rejected")
        return 1

    broken = copy.deepcopy(baseline)
    broken["identical"] = False
    if not gate(baseline, broken, tolerance):
        print("self-test FAILED: kernel disagreement was not rejected")
        return 1

    print("self-test passed: gate accepts the baseline and rejects "
          "injected regressions")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_kernel.json")
    parser.add_argument("fresh", nargs="?",
                        help="freshly measured BENCH_kernel.json")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="allowed fractional drop below the "
                             "baseline speedup (default 0.30)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate fails on an injected "
                             "regression instead of comparing")
    args = parser.parse_args()

    baseline = load(args.baseline)
    if args.self_test:
        return self_test(baseline, args.tolerance)
    if args.fresh is None:
        parser.error("FRESH is required unless --self-test")

    failures = gate(baseline, load(args.fresh), args.tolerance)
    if failures:
        print("perf gate FAILED:", *failures, sep="\n  ")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
