#!/usr/bin/env bash
# Chaos smoke battery: >=20 randomized SIGKILL/restart cycles against
# the real nocalert_serve daemon (torn journals, flipped cache bytes,
# stale sockets), asserting byte-identical recovery every time.
#
# Usage: scripts/chaos_smoke.sh [build-dir]
#   NOCALERT_CHAOS_CYCLES  override the cycle count (default 20)
#   NOCALERT_CHAOS_SEED    pin the RNG seed to replay a failure
set -euo pipefail

BUILD_DIR="${1:-build}"
CYCLES="${NOCALERT_CHAOS_CYCLES:-20}"
TEST_BIN="${BUILD_DIR}/tests/test_serve"

if [[ ! -x "${TEST_BIN}" ]]; then
    echo "chaos_smoke: ${TEST_BIN} not found; build first" >&2
    exit 2
fi

echo "chaos_smoke: running ${CYCLES} kill -9 cycles"
NOCALERT_CHAOS_CYCLES="${CYCLES}" \
    "${TEST_BIN}" --gtest_filter='*ChaosTest*'
echo "chaos_smoke: all cycles recovered byte-identically"
