/**
 * @file
 * Run a small fault-injection campaign and print the classification
 * breakdown — a miniature of the paper's Section 5.4 evaluation.
 *
 *   ./fault_campaign [--sites N] [--warmup N] [--rate R] [--jobs N]
 *                    [--progress]
 *
 * `--sample` switches to the statistical engine: stratified random
 * draws with adaptive stopping instead of an exhaustive sweep
 * (`--ci-width` target interval half-width, `--max-runs` hard budget,
 * `--seeds`/`--cycle-jitter` extra sampled dimensions). The summary
 * then includes per-stratum detection estimates with Wilson and
 * Clopper-Pearson intervals.
 *
 * `--phases`/`--burst`/`--phase-repeat` switch the workload to a
 * phase program (see simulate --help for the segment syntax), and
 * `--trace-replay FILE` replays a recorded injection trace; with
 * `--sample --stratify phase` the sampler stratifies injection cycles
 * by the phase segment they land in.
 */

#include <cstdio>
#include <fstream>

#include "exec/telemetry.hpp"
#include "fault/campaign.hpp"
#include "fault/report.hpp"
#include "fault/serialize.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"sites", "warmup", "rate", "jobs", "seed",
                     "mesh", "csv", "json", "dense-kernel", "kind",
                     "recovery", "progress", "sample", "ci-width",
                     "max-runs", "batch", "confidence", "stratify",
                     "ci-method", "cycle-jitter", "seeds",
                     "sampler-seed", "phases", "burst", "phase-repeat",
                     "trace-replay"});

    fault::CampaignConfig config;
    config.network.width = static_cast<int>(cli.getInt("mesh", 8));
    config.network.height = config.network.width;
    if (cli.has("phases") && cli.has("trace-replay"))
        NOCALERT_FATAL("--phases and --trace-replay are mutually "
                       "exclusive");
    if (cli.has("phases")) {
        config.workload.kind = traffic::WorkloadKind::Phased;
        std::string error = traffic::parsePhaseProgram(
            cli.getString("phases", ""), config.workload.phased);
        if (!error.empty())
            NOCALERT_FATAL("bad --phases: ", error);
        if (cli.has("burst")) {
            error = traffic::parseBurstSpec(cli.getString("burst", ""),
                                            config.workload.phased.burst);
            if (!error.empty())
                NOCALERT_FATAL("bad --burst: ", error);
        }
        config.workload.phased.repeat =
            cli.getBool("phase-repeat", false);
    } else if (cli.has("trace-replay")) {
        config.workload.kind = traffic::WorkloadKind::Trace;
        config.workload.trace.path = cli.getString("trace-replay", "");
        std::string error;
        if (!traffic::stampTraceSpec(config.workload.trace, &error))
            NOCALERT_FATAL("bad --trace-replay: ", error);
    }
    config.workload.synthetic.injectionRate = cli.getDouble("rate", 0.04);
    config.workload.setSeed(
        static_cast<std::uint64_t>(cli.getInt("seed", 3)));
    config.warmup = cli.getInt("warmup", 1000);
    config.maxSites = static_cast<unsigned>(cli.getInt("sites", 120));
    config.jobs = static_cast<unsigned>(cli.getInt("jobs", 0));
    config.denseKernel = cli.getBool("dense-kernel", false);
    config.recovery = cli.getBool("recovery", false);
    const std::string kind = cli.getString("kind", "transient");
    if (auto k = fault::faultKindFromName(kind))
        config.kind = *k;
    else {
        std::fprintf(stderr, "unknown fault kind '%s'\n", kind.c_str());
        return 2;
    }
    if (cli.getBool("sample", false)) {
        fault::SamplingSpec &sampling = config.sampling;
        sampling.enabled = true;
        sampling.ciHalfWidth = cli.getDouble("ci-width", 0.05);
        sampling.maxRuns =
            static_cast<std::uint64_t>(cli.getInt("max-runs", 0));
        sampling.batchSize =
            static_cast<unsigned>(cli.getInt("batch", 64));
        sampling.confidence = cli.getDouble("confidence", 0.95);
        sampling.cycleJitter = cli.getInt("cycle-jitter", 0);
        sampling.seedCount =
            static_cast<unsigned>(cli.getInt("seeds", 1));
        sampling.samplerSeed =
            static_cast<std::uint64_t>(cli.getInt("sampler-seed", 1));
        const std::string stratify =
            cli.getString("stratify", "signal-class");
        if (auto mode = fault::stratifyFromName(stratify))
            sampling.stratify = *mode;
        else {
            std::fprintf(stderr, "unknown stratification '%s'\n",
                         stratify.c_str());
            return 2;
        }
        const std::string method = cli.getString("ci-method", "wilson");
        if (auto m = stats::intervalMethodFromName(method))
            sampling.method = *m;
        else {
            std::fprintf(stderr, "unknown interval method '%s'\n",
                         method.c_str());
            return 2;
        }
        if (sampling.ciHalfWidth <= 0 && sampling.maxRuns == 0) {
            std::fprintf(stderr, "--sample needs --ci-width > 0 or "
                                 "--max-runs > 0\n");
            return 2;
        }
    }

    if (config.sampling.enabled) {
        std::printf("running sampled campaign on a %dx%d mesh "
                    "(warmup %lld cycles, half-width %.3g)...\n",
                    config.network.width, config.network.height,
                    static_cast<long long>(config.warmup),
                    config.sampling.ciHalfWidth);
    } else {
        std::printf("running %u-site campaign on a %dx%d mesh "
                    "(warmup %lld cycles)...\n",
                    config.maxSites, config.network.width,
                    config.network.height,
                    static_cast<long long>(config.warmup));
    }

    fault::FaultCampaign::RunOptions options;
    if (cli.getBool("progress", false)) {
        options.telemetry = [](const exec::TelemetrySnapshot &snap) {
            std::fprintf(stderr, "\r\033[K%s",
                         exec::TelemetryHub::progressLine(snap).c_str());
        };
    }

    fault::FaultCampaign campaign(config);
    const fault::CampaignResult result = campaign.run(nullptr, options);
    if (options.telemetry)
        std::fprintf(stderr, "\n");
    const fault::CampaignSummary summary = result.summarize();

    Table table({"detector", "true-pos", "false-pos", "true-neg",
                 "false-neg", "recovered"});
    auto row = [&](const char *name,
                   const std::array<std::uint64_t, fault::kNumOutcomes>
                       &counts) {
        table.addRow({name, Table::pct(summary.pct(counts[0])),
                      Table::pct(summary.pct(counts[1])),
                      Table::pct(summary.pct(counts[2])),
                      Table::pct(summary.pct(counts[3])),
                      Table::pct(summary.pct(counts[4]))});
    };
    row("NoCAlert", summary.nocalert);
    row("NoCAlert Cautious", summary.cautious);
    if (result.config.runForever)
        row("ForEVeR", summary.forever);
    table.setTitle("fault classification (" +
                   std::to_string(summary.runs) + " injections)");
    table.print();

    if (!summary.detectionLatency.empty()) {
        std::printf("\nNoCAlert detection latency: same-cycle %.1f%%, "
                    "p99 %lld, max %lld cycles\n",
                    100.0 * summary.detectionLatency.cdfAt(0),
                    static_cast<long long>(
                        summary.detectionLatency.percentile(0.99)),
                    static_cast<long long>(
                        summary.detectionLatency.max()));
    }
    if (config.sampling.enabled)
        std::printf("\n%s", fault::samplingText(result).c_str());
    std::printf("false negatives (must be 0): %llu\n",
                static_cast<unsigned long long>(
                    summary.nocalert[static_cast<unsigned>(
                        fault::Outcome::FalseNegative)]));
    if (result.config.recovery) {
        std::printf("detected-recovered: %llu of %llu runs\n",
                    static_cast<unsigned long long>(
                        summary.nocalert[static_cast<unsigned>(
                            fault::Outcome::DetectedRecovered)]),
                    static_cast<unsigned long long>(summary.runs));
    }

    if (cli.has("csv")) {
        const std::string path = cli.getString("csv", "campaign.csv");
        std::ofstream file(path);
        fault::writeCampaignCsv(result, file);
        std::printf("per-run records written to %s\n", path.c_str());
    }
    if (cli.has("json")) {
        const std::string path = cli.getString("json", "campaign.json");
        std::string error;
        if (!fault::saveCampaignResult(result, path, &error))
            std::printf("JSON export failed: %s\n", error.c_str());
        else
            std::printf("result JSON written to %s\n", path.c_str());
    }
    return 0;
}
