/**
 * @file
 * Router-variant tour (paper Section 4.4): NoCAlert adapts to
 * micro-architectural variations because the invariant set is derived
 * from each design's functional rules. This example runs the same
 * traffic over four router variants and shows which invariants are
 * armed and that all variants stay alert-free when healthy.
 *
 *   ./router_variants [--cycles N]
 */

#include <cstdio>

#include "core/nocalert.hpp"
#include "noc/network.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nocalert;

namespace {

unsigned
armedInvariants(const noc::RouterParams &params)
{
    unsigned count = 0;
    for (const core::InvariantInfo &info : core::invariantCatalog()) {
        if (info.atomicOnly && !params.atomicBuffers)
            continue;
        if (info.nonAtomicOnly && params.atomicBuffers)
            continue;
        if (info.needsVcs && params.numVcs <= 1)
            continue;
        ++count;
    }
    return count;
}

struct Variant
{
    const char *name;
    noc::NetworkConfig config;
};

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv, {"cycles", "rate"});
    const noc::Cycle cycles = cli.getInt("cycles", 3000);

    noc::TrafficSpec traffic;
    traffic.injectionRate = cli.getDouble("rate", 0.04);

    std::vector<Variant> variants;

    Variant baseline{"baseline (atomic, 4 VCs, XY)", {}};
    variants.push_back(baseline);

    Variant non_atomic{"non-atomic buffers", {}};
    non_atomic.config.router.atomicBuffers = false;
    variants.push_back(non_atomic);

    Variant speculative{"speculative VA+SA", {}};
    speculative.config.router.speculative = true;
    variants.push_back(speculative);

    Variant no_vcs{"no VCs (wormhole only)", {}};
    no_vcs.config.router.numVcs = 1;
    no_vcs.config.router.classes = {{"data", 5}};
    variants.push_back(no_vcs);

    Variant adaptive{"west-first adaptive routing", {}};
    adaptive.config.routing = noc::RoutingAlgo::WestFirst;
    variants.push_back(adaptive);

    Table table({"variant", "armed invariants", "pkts delivered",
                 "avg latency", "alerts"});

    for (Variant &variant : variants) {
        variant.config.width = 6;
        variant.config.height = 6;

        noc::Network network(variant.config, traffic);
        core::NoCAlertEngine engine(network);
        network.run(cycles);

        const noc::NetworkStats stats = network.stats();
        table.addRow({variant.name,
                      std::to_string(armedInvariants(
                          variant.config.router)),
                      std::to_string(stats.packetsEjected),
                      Table::num(stats.avgPacketLatency(), 1),
                      std::to_string(engine.log().count())});
    }

    table.setTitle("NoCAlert across router variants (fault-free; "
                   "alerts must be 0)");
    table.print();
    return 0;
}
