/**
 * @file
 * Classic NoC characterization: average packet latency versus offered
 * load, across traffic patterns — the substrate's stand-alone value
 * beyond fault detection. NoCAlert runs alongside the sweep,
 * demonstrating the zero-interference property (latencies are
 * identical with and without the checkers, and no alert ever fires).
 *
 *   ./latency_curve [--mesh N] [--pattern uniform|transpose|tornado]
 */

#include <cstdio>

#include "core/nocalert.hpp"
#include "noc/network.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv, {"mesh", "pattern", "cycles"});

    noc::NetworkConfig config;
    config.width = static_cast<int>(cli.getInt("mesh", 8));
    config.height = config.width;

    noc::TrafficPattern pattern = noc::TrafficPattern::UniformRandom;
    const std::string name = cli.getString("pattern", "uniform");
    if (name == "transpose")
        pattern = noc::TrafficPattern::Transpose;
    else if (name == "tornado")
        pattern = noc::TrafficPattern::Tornado;
    else if (name == "bit-complement")
        pattern = noc::TrafficPattern::BitComplement;
    else if (name == "hotspot")
        pattern = noc::TrafficPattern::Hotspot;

    const noc::Cycle cycles = cli.getInt("cycles", 3000);

    std::printf("latency vs offered load — %dx%d mesh, %s traffic, "
                "%lld-cycle windows (NoCAlert attached throughout)\n\n",
                config.width, config.height,
                trafficPatternName(pattern),
                static_cast<long long>(cycles));

    Table table({"inj rate (pkt/node/cy)", "offered (flits/node/cy)",
                 "avg latency (cy)", "throughput (flits/node/cy)",
                 "alerts"});

    for (double rate : {0.005, 0.01, 0.02, 0.04, 0.06, 0.08, 0.10,
                        0.14, 0.18, 0.22}) {
        noc::TrafficSpec traffic;
        traffic.pattern = pattern;
        traffic.injectionRate = rate;
        traffic.seed = 5;

        noc::Network net(config, traffic);
        core::NoCAlertEngine engine(net);
        net.run(cycles);

        const noc::NetworkStats stats = net.stats();
        const double offered =
            static_cast<double>(stats.flitsInjected) /
            (static_cast<double>(cycles) * config.numNodes());
        table.addRow({Table::num(rate, 3), Table::num(offered, 3),
                      Table::num(stats.avgPacketLatency(), 1),
                      Table::num(stats.throughput(config.numNodes()), 3),
                      std::to_string(engine.log().count())});
    }
    table.print();
    std::printf("\nlatency climbs toward saturation while the checker "
                "column stays at zero: detection is free of false "
                "alarms and invisible to performance.\n");
    return 0;
}
