/**
 * @file
 * The campaign service daemon: accept campaign specs over a local
 * Unix-domain socket, multiplex them fairly onto the in-process
 * execution engine, stream live telemetry to watchers, and answer
 * repeated submissions byte-identically from the artifact cache.
 *
 *   nocalert_serve --socket PATH [--cache DIR] [--jobs N]
 *                  [--quantum N] [--checkpoint-every N]
 *                  [--max-line BYTES] [--cache-max-bytes N]
 *                  [--journal PATH|none]
 *
 * The protocol is newline-delimited JSON (one request or response per
 * line); `nocalert_client help` documents the client side. Concurrent
 * campaigns advance round-robin, one batch quantum per turn, so a
 * small interactive campaign is never starved behind a large one.
 * Served artifacts are byte-identical to what the batch CLIs
 * (fault_campaign, campaign_shard) write for the same spec — the
 * cache directory can be inspected, diffed, and reused across daemon
 * restarts.
 *
 * The daemon exits on a `shutdown` request, cancelling in-flight
 * campaigns cooperatively; their checkpoints remain in the cache
 * directory and a re-submission after restart resumes where they
 * stopped. With the write-ahead journal (on by default), even a hard
 * kill loses no accepted submission: the next start replays the
 * journal, requeues unfinished campaigns, and resumes each from its
 * checkpoint — losing at most the runs since the last checkpoint
 * write.
 *
 * Exit status: 0 clean shutdown; 1 socket setup failed; 2 usage error.
 */

#include <cstdio>
#include <string>

#include "serve/server.hpp"
#include "util/cli.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    const CommandLine cli(argc, argv,
                          {"socket", "cache", "jobs", "quantum",
                           "checkpoint-every", "max-line",
                           "cache-max-bytes", "journal", "help"});
    if (cli.getBool("help", false)) {
        std::printf(
            "usage: nocalert_serve --socket PATH [--cache DIR]\n"
            "                      [--jobs N] [--quantum N]\n"
            "                      [--checkpoint-every N]\n"
            "                      [--max-line BYTES]\n"
            "                      [--cache-max-bytes N]\n"
            "                      [--journal PATH|none]\n"
            "\n"
            "  --socket PATH        Unix-domain socket to listen on\n"
            "  --cache DIR          artifact/checkpoint store\n"
            "                       (default: nocalert-cache)\n"
            "  --jobs N             workers per quantum (0 = all\n"
            "                       hardware threads; default 1)\n"
            "  --quantum N          runs per scheduling turn\n"
            "                       (default 16)\n"
            "  --checkpoint-every N checkpoint cadence (default 8)\n"
            "  --max-line BYTES     per-request line ceiling\n"
            "  --cache-max-bytes N  artifact-byte budget; least\n"
            "                       recently used entries are evicted\n"
            "                       past it (0 = unlimited, default)\n"
            "  --journal PATH       write-ahead submission journal\n"
            "                       (default: CACHE/journal.wal;\n"
            "                       'none' disables durability)\n");
        return 0;
    }

    const std::string socket_path = cli.getString("socket", "");
    if (socket_path.empty()) {
        std::fprintf(stderr,
                     "usage: nocalert_serve --socket PATH [--cache DIR]"
                     " [--jobs N] [--quantum N]\n");
        return 2;
    }

    serve::ServerConfig config;
    config.socketPath = socket_path;
    config.cacheDir = cli.getString("cache", "nocalert-cache");
    config.registry.jobs =
        static_cast<unsigned>(cli.getInt("jobs", 1));
    config.registry.quantum =
        static_cast<unsigned>(cli.getInt("quantum", 16));
    config.registry.checkpointEvery = static_cast<unsigned>(
        cli.getInt("checkpoint-every", config.registry.checkpointEvery));
    config.maxLineBytes = static_cast<std::size_t>(cli.getInt(
        "max-line",
        static_cast<std::int64_t>(serve::kDefaultMaxLineBytes)));
    config.cacheMaxBytes =
        static_cast<std::uint64_t>(cli.getInt("cache-max-bytes", 0));
    config.journalPath = cli.getString("journal", "");

    serve::CampaignServer server(std::move(config));
    std::string error;
    if (!server.start(&error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
    }
    std::printf("nocalert_serve: listening on %s (cache %s)\n",
                server.socketPath().c_str(),
                server.cache().directory().c_str());
    const serve::RecoveryInfo recovery = server.registry().recovery();
    if (recovery.recordsReplayed > 0 || recovery.recordsCorrupt > 0 ||
        recovery.bytesDroppedAtTail > 0) {
        std::printf("nocalert_serve: journal replay: %zu records, "
                    "%zu requeued, %zu completed intact, %zu healed"
                    " (%zu corrupt records, %zu torn tail bytes)\n",
                    recovery.recordsReplayed, recovery.requeued,
                    recovery.completedVerified,
                    recovery.completedRequeued, recovery.recordsCorrupt,
                    recovery.bytesDroppedAtTail);
    }
    std::fflush(stdout);

    server.waitForShutdown();
    std::printf("nocalert_serve: shutting down\n");
    server.stop();
    return 0;
}
