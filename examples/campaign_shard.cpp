/**
 * @file
 * Sharded, resumable fault-injection campaigns with JSON results —
 * the distributed front-end of FaultCampaign (used by CI's campaign
 * smoke check and by multi-machine sweeps).
 *
 *   campaign_shard run    --out s0.json [--shard 0/2] [--checkpoint c.json]
 *                         [--mesh N] [--sites N] [--rate R] [--seed S]
 *                         [--warmup N] [--jobs N] [--limit N] [--progress]
 *                         [--checkpoint-every N] [--kind K] [--recovery]
 *                         [--sample] [--ci-width W] [--max-runs N]
 *                         [--batch N] [--confidence C] [--stratify MODE]
 *                         [--ci-method M] [--cycle-jitter N] [--seeds N]
 *                         [--sampler-seed S]
 *                         [--phases PROG] [--burst SPEC] [--phase-repeat]
 *                         [--trace-replay FILE]
 *   campaign_shard resume --checkpoint c.json [--out s0.json] [--jobs N]
 *                         [--progress]
 *   campaign_shard merge  --out merged.json s0.json s1.json ...
 *   campaign_shard verify a.json b.json
 *   campaign_shard help
 *
 * `run` executes one shard (default 0/1, i.e. the whole campaign) and
 * writes the result JSON; the checkpoint (default: the --out file)
 * makes a killed run resumable. `--limit N` stops after N new runs,
 * leaving a valid checkpoint — a deterministic stand-in for a kill.
 * `--jobs N` runs N in-process workers (0 = all hardware threads);
 * results are byte-identical for every value. A first Ctrl-C stops the
 * campaign cooperatively and flushes a resumable checkpoint; a second
 * kills the process. `--progress` renders a live status line (runs/s,
 * ETA, outcome counters, worker utilization) on stderr.
 * `--sample` switches the shard to the statistical campaign engine:
 * instead of sweeping every site, it draws (site, cycle, traffic-seed)
 * tuples stratified by signal class until every stratum's confidence
 * interval is narrower than --ci-width (or --max-runs is exhausted),
 * reallocating budget toward uncertain and rare-outcome strata.
 * Sampled runs stay byte-identical for every --jobs value and
 * checkpoint/resume exactly like exhaustive ones (resume replays the
 * deterministic draw stream, pre-filling checkpointed results).
 * `resume` re-reads a checkpoint's embedded config and finishes the
 * shard. `merge` recombines a full set of shard files into a document
 * bit-identical to an unsharded run. `verify` checks that two result
 * files describe the same campaign with identical runs and summaries
 * (including, for sampled results, identical per-stratum estimates)
 * and that neither contains a NoCAlert false negative.
 *
 * Exit status: 0 success; 1 verify mismatch (or other fatal error);
 * 2 usage error; 3 verify input file missing; 4 verify input file
 * corrupt (unparseable or failing validation); 130 interrupted by
 * SIGINT (checkpoint flushed, resumable).
 */

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "exec/cancel.hpp"
#include "exec/telemetry.hpp"
#include "fault/campaign.hpp"
#include "fault/report.hpp"
#include "fault/serialize.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace nocalert;

namespace {

// Exit codes (documented in `campaign_shard help`).
constexpr int kExitOk = 0;
constexpr int kExitMismatch = 1;
constexpr int kExitUsage = 2;
constexpr int kExitMissingFile = 3;
constexpr int kExitCorruptFile = 4;
constexpr int kExitInterrupted = 130;

void
printHelp(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: campaign_shard <run|resume|merge|verify|help> [options]\n"
        "\n"
        "  run    --out FILE [--shard i/N] [--checkpoint FILE]\n"
        "         [--mesh N] [--sites N] [--rate R] [--seed S]\n"
        "         [--warmup N] [--jobs N] [--limit N] [--progress]\n"
        "         [--checkpoint-every N] [--kind K] [--dense-kernel]\n"
        "         [--recovery]\n"
        "         [--sample] [--ci-width W] [--max-runs N] [--batch N]\n"
        "         [--confidence C] [--stratify none|signal-class|phase]\n"
        "         [--ci-method wilson|clopper-pearson]\n"
        "         [--cycle-jitter N] [--seeds N] [--sampler-seed S]\n"
        "         [--phases PROG] [--burst SPEC] [--phase-repeat]\n"
        "         [--trace-replay FILE]\n"
        "             execute one shard; --jobs 0 uses all hardware\n"
        "             threads (results are byte-identical for every\n"
        "             --jobs value); Ctrl-C flushes a resumable\n"
        "             checkpoint. --sample draws stratified random\n"
        "             (site, cycle, seed) tuples until every stratum's\n"
        "             interval half-width is below --ci-width or\n"
        "             --max-runs is spent (0 = no cap; at least one of\n"
        "             the two must bound the campaign)\n"
        "             --phases \"b:e:pattern:rate[,...]\" runs a phase\n"
        "             program instead of stationary traffic; --burst\n"
        "             \"period:onProb:onMult:offMult[:layers]\" adds\n"
        "             on/off modulation; --trace-replay FILE replays a\n"
        "             recorded injection trace; --stratify phase bins\n"
        "             injection cycles by phase segment\n"
        "  resume --checkpoint FILE [--out FILE] [--jobs N] [--progress]\n"
        "             finish a shard from its checkpoint\n"
        "  merge  --out FILE s0.json s1.json ...\n"
        "             recombine a complete set of shards\n"
        "  verify a.json b.json\n"
        "             compare two result files run-by-run\n"
        "\n"
        "exit status:\n"
        "  0    success\n"
        "  1    verify mismatch, or any other fatal error\n"
        "  2    usage error\n"
        "  3    verify: an input file does not exist\n"
        "  4    verify: an input file is corrupt (unparseable JSON or\n"
        "       failed schema/consistency validation)\n"
        "  130  interrupted by SIGINT; the checkpoint was flushed and\n"
        "       the shard is resumable\n");
}

int
usage()
{
    printHelp(stderr);
    return kExitUsage;
}

void
parseShardSelector(const std::string &selector, fault::CampaignConfig &config)
{
    const std::size_t slash = selector.find('/');
    if (slash == std::string::npos)
        NOCALERT_FATAL("--shard expects i/N, got '", selector, "'");
    try {
        config.shardIndex =
            static_cast<unsigned>(std::stoul(selector.substr(0, slash)));
        config.shardCount =
            static_cast<unsigned>(std::stoul(selector.substr(slash + 1)));
    } catch (...) {
        NOCALERT_FATAL("--shard expects i/N, got '", selector, "'");
    }
}

void
writeResultOrDie(const fault::CampaignResult &result,
                 const std::string &path)
{
    std::string error;
    if (!fault::saveCampaignResult(result, path, &error))
        NOCALERT_FATAL(error);
}

fault::CampaignResult
loadResultOrDie(const std::string &path)
{
    std::string error;
    auto result = fault::loadCampaignResult(path, &error);
    if (!result)
        NOCALERT_FATAL(error);
    return std::move(*result);
}

int
runShard(fault::FaultCampaign &campaign,
         fault::FaultCampaign::RunOptions options, const std::string &out,
         bool show_progress)
{
    // Route the first Ctrl-C into cooperative cancellation so the
    // campaign flushes a valid checkpoint before returning.
    exec::CancelToken cancel;
    exec::SigintCancelScope sigint(cancel);
    options.cancel = &cancel;

    fault::FaultCampaign::Progress progress;
    if (show_progress) {
        options.telemetry = [](const exec::TelemetrySnapshot &snap) {
            std::fprintf(stderr, "\r\033[K%s",
                         exec::TelemetryHub::progressLine(snap).c_str());
        };
    } else {
        progress = [](std::size_t done, std::size_t total) {
            if (done % 10 == 0 || done == total)
                std::printf("  %zu/%zu runs\n", done, total);
        };
    }

    const fault::CampaignResult result = campaign.run(progress, options);
    if (show_progress)
        std::fprintf(stderr, "\n");
    writeResultOrDie(result, out);

    if (!result.complete()) {
        std::printf("shard %s (%zu of %zu runs); resume with:\n"
                    "  campaign_shard resume --checkpoint %s\n",
                    cancel.cancelled() ? "interrupted" : "incomplete",
                    result.runs.size(), result.shardRunsPlanned,
                    result.config.checkpointPath.c_str());
        return cancel.cancelled() ? kExitInterrupted : kExitOk;
    }
    std::printf("%s", fault::summaryText(result).c_str());
    std::printf("wrote %s\n", out.c_str());
    return kExitOk;
}

int
cmdRun(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"out", "shard", "checkpoint", "checkpoint-every",
                     "mesh", "sites", "rate", "seed", "warmup", "jobs",
                     "limit", "progress", "dense-kernel", "kind",
                     "recovery", "sample", "ci-width", "max-runs",
                     "batch", "confidence", "stratify", "ci-method",
                     "cycle-jitter", "seeds", "sampler-seed", "phases",
                     "burst", "phase-repeat", "trace-replay"});

    fault::CampaignConfig config;
    config.network.width = static_cast<int>(cli.getInt("mesh", 4));
    config.network.height = config.network.width;
    if (cli.has("phases") && cli.has("trace-replay"))
        NOCALERT_FATAL("--phases and --trace-replay are mutually "
                       "exclusive");
    if (cli.has("phases")) {
        config.workload.kind = traffic::WorkloadKind::Phased;
        std::string error = traffic::parsePhaseProgram(
            cli.getString("phases", ""), config.workload.phased);
        if (!error.empty())
            NOCALERT_FATAL("bad --phases: ", error);
        if (cli.has("burst")) {
            error = traffic::parseBurstSpec(cli.getString("burst", ""),
                                            config.workload.phased.burst);
            if (!error.empty())
                NOCALERT_FATAL("bad --burst: ", error);
        }
        config.workload.phased.repeat =
            cli.getBool("phase-repeat", false);
    } else if (cli.has("trace-replay")) {
        config.workload.kind = traffic::WorkloadKind::Trace;
        config.workload.trace.path = cli.getString("trace-replay", "");
        std::string error;
        if (!traffic::stampTraceSpec(config.workload.trace, &error))
            NOCALERT_FATAL("bad --trace-replay: ", error);
    }
    config.workload.synthetic.injectionRate = cli.getDouble("rate", 0.05);
    config.workload.setSeed(
        static_cast<std::uint64_t>(cli.getInt("seed", 3)));
    config.warmup = cli.getInt("warmup", 200);
    config.maxSites = static_cast<unsigned>(cli.getInt("sites", 120));
    config.jobs = static_cast<unsigned>(cli.getInt("jobs", 0));
    config.denseKernel = cli.getBool("dense-kernel", false);
    config.recovery = cli.getBool("recovery", false);
    const std::string kind = cli.getString("kind", "transient");
    if (auto k = fault::faultKindFromName(kind))
        config.kind = *k;
    else
        NOCALERT_FATAL("unknown fault kind '", kind, "'");
    parseShardSelector(cli.getString("shard", "0/1"), config);

    if (cli.getBool("sample", false)) {
        fault::SamplingSpec &sampling = config.sampling;
        sampling.enabled = true;
        sampling.ciHalfWidth = cli.getDouble("ci-width", 0.05);
        sampling.maxRuns =
            static_cast<std::uint64_t>(cli.getInt("max-runs", 0));
        sampling.batchSize =
            static_cast<unsigned>(cli.getInt("batch", 64));
        sampling.confidence = cli.getDouble("confidence", 0.95);
        sampling.cycleJitter = cli.getInt("cycle-jitter", 0);
        sampling.seedCount =
            static_cast<unsigned>(cli.getInt("seeds", 1));
        sampling.samplerSeed =
            static_cast<std::uint64_t>(cli.getInt("sampler-seed", 1));
        const std::string stratify =
            cli.getString("stratify", "signal-class");
        if (auto mode = fault::stratifyFromName(stratify))
            sampling.stratify = *mode;
        else
            NOCALERT_FATAL("unknown stratification '", stratify,
                           "' (none|signal-class|phase)");
        const std::string method = cli.getString("ci-method", "wilson");
        if (auto m = stats::intervalMethodFromName(method))
            sampling.method = *m;
        else
            NOCALERT_FATAL("unknown interval method '", method,
                           "' (wilson|clopper-pearson)");
        // The planner's budget guard would catch this too, but only
        // after the FaultCampaign constructor; fail at flag level
        // with flag names the user can act on.
        if (sampling.ciHalfWidth <= 0 && sampling.maxRuns == 0)
            NOCALERT_FATAL("--sample needs --ci-width > 0 or "
                           "--max-runs > 0 to bound the campaign");
    }

    const std::string out = cli.getString("out", "campaign.json");
    config.checkpointPath = cli.getString("checkpoint", out);
    config.checkpointEvery = static_cast<unsigned>(
        cli.getInt("checkpoint-every", config.checkpointEvery));

    fault::FaultCampaign::RunOptions options;
    options.maxNewRuns =
        static_cast<std::size_t>(cli.getInt("limit", 0));

    if (config.sampling.enabled) {
        std::printf("running sampled campaign (mesh %dx%d, "
                    "half-width %.3g, max-runs %llu)\n",
                    config.network.width, config.network.height,
                    config.sampling.ciHalfWidth,
                    static_cast<unsigned long long>(
                        config.sampling.maxRuns));
    } else {
        std::printf("running shard %u/%u (%u sites sampled, "
                    "mesh %dx%d)\n",
                    config.shardIndex, config.shardCount,
                    config.maxSites, config.network.width,
                    config.network.height);
    }
    fault::FaultCampaign campaign(config);
    return runShard(campaign, options, out,
                    cli.getBool("progress", false));
}

int
cmdResume(int argc, char **argv)
{
    CommandLine cli(argc, argv, {"checkpoint", "out", "jobs", "progress"});
    const std::string checkpoint = cli.getString("checkpoint", "");
    if (checkpoint.empty())
        NOCALERT_FATAL("resume requires --checkpoint FILE");

    // A checkpoint that exists but cannot be parsed (truncated write,
    // disk corruption) must stop the resume with a diagnosis — never
    // crash, and never fall through to silently restarting the
    // campaign from scratch over the damaged file. loadCampaignResult
    // reports the offending path and, for malformed JSON, the byte
    // offset where parsing failed.
    std::string load_error;
    auto loaded = fault::loadCampaignResult(checkpoint, &load_error);
    if (!loaded) {
        std::fprintf(stderr,
                     "error: cannot resume from checkpoint: %s\n"
                     "       (delete the file to restart the shard "
                     "from scratch)\n",
                     load_error.c_str());
        return 1;
    }

    // Execution knobs are not serialized (schema v4+): the checkpoint
    // carries campaign identity + shard selector (including, for
    // sampled campaigns, the full sampling spec — so the resumed
    // planner replays the exact same draw stream), and this
    // invocation supplies its own jobs count and checkpoint path.
    fault::CampaignConfig config = loaded->config;
    config.checkpointPath = checkpoint;
    config.jobs = static_cast<unsigned>(cli.getInt("jobs", 0));

    const std::string out = cli.getString("out", checkpoint);
    std::printf("resuming shard %u/%u from %s\n", config.shardIndex,
                config.shardCount, checkpoint.c_str());
    fault::FaultCampaign campaign(config);
    return runShard(campaign, {}, out, cli.getBool("progress", false));
}

int
cmdMerge(int argc, char **argv)
{
    CommandLine cli(argc, argv, {"out"}, /*allow_positionals=*/true);
    if (cli.positionals().empty())
        NOCALERT_FATAL("merge requires shard files as arguments");

    std::vector<fault::CampaignResult> shards;
    for (const std::string &path : cli.positionals())
        shards.push_back(loadResultOrDie(path));

    std::string error;
    auto merged = fault::mergeCampaignShards(shards, &error);
    if (!merged)
        NOCALERT_FATAL("merge failed: ", error);

    const std::string out = cli.getString("out", "merged.json");
    writeResultOrDie(*merged, out);
    std::printf("%s", fault::summaryText(*merged).c_str());
    std::printf("merged %zu shards into %s\n", shards.size(),
                out.c_str());
    return kExitOk;
}

/**
 * Load a verify input, distinguishing "file does not exist" (exit 3)
 * from "exists but is corrupt" (exit 4) — a missing shard and a
 * damaged shard call for different operator responses.
 */
fault::CampaignResult
loadVerifyInputOrExit(const std::string &path)
{
    if (!std::filesystem::exists(path)) {
        std::fprintf(stderr, "error: '%s' does not exist\n",
                     path.c_str());
        std::exit(kExitMissingFile);
    }
    std::string error;
    auto result = fault::loadCampaignResult(path, &error);
    if (!result) {
        std::fprintf(stderr, "error: corrupt result file: %s\n",
                     error.c_str());
        std::exit(kExitCorruptFile);
    }
    return std::move(*result);
}

int
cmdVerify(int argc, char **argv)
{
    CommandLine cli(argc, argv, {}, /*allow_positionals=*/true);
    if (cli.positionals().size() != 2) {
        std::fprintf(stderr,
                     "usage: campaign_shard verify a.json b.json\n");
        return kExitUsage;
    }

    const fault::CampaignResult a =
        loadVerifyInputOrExit(cli.positionals()[0]);
    const fault::CampaignResult b =
        loadVerifyInputOrExit(cli.positionals()[1]);

    int failures = 0;
    auto check = [&](bool ok, const char *what) {
        std::printf("  %-28s %s\n", what, ok ? "ok" : "MISMATCH");
        failures += ok ? 0 : 1;
    };

    check(a.complete() && b.complete(), "both complete");
    check(fault::campaignIdentityJson(a.config) ==
              fault::campaignIdentityJson(b.config),
          "campaign identity");
    check(a.totalSitesEnumerated == b.totalSitesEnumerated &&
              a.goldenFlits == b.goldenFlits,
          "enumeration + golden");

    // Per-run records and derived summaries must be bit-identical
    // (sampled records include their stratum/seedIndex draw tags).
    JsonValue runs_a, runs_b;
    for (const fault::FaultRunResult &run : a.runs)
        runs_a.push(fault::toJson(run, a.config.sampling.enabled));
    for (const fault::FaultRunResult &run : b.runs)
        runs_b.push(fault::toJson(run, b.config.sampling.enabled));
    check(runs_a.dump() == runs_b.dump(), "per-run records");

    const auto summary_a = a.summarize();
    const auto summary_b = b.summarize();
    check(fault::toJson(summary_a).dump() ==
              fault::toJson(summary_b).dump(),
          "summaries");

    // Sampled results must additionally agree on their statistical
    // projections — same draws, same intervals, same halt state.
    if (a.config.sampling.enabled || b.config.sampling.enabled) {
        check(a.config.sampling.enabled == b.config.sampling.enabled &&
                  a.samplerDone == b.samplerDone,
              "sampler completion");
        if (a.config.sampling.enabled && b.config.sampling.enabled) {
            check(fault::toJson(fault::computeSamplingReport(a)).dump() ==
                      fault::toJson(fault::computeSamplingReport(b))
                          .dump(),
                  "sampling estimates");
        }
    }

    const auto fn = static_cast<unsigned>(fault::Outcome::FalseNegative);
    check(summary_a.nocalert[fn] == 0 && summary_b.nocalert[fn] == 0,
          "zero false negatives");

    if (failures) {
        std::printf("verify FAILED (%d checks)\n", failures);
        return kExitMismatch;
    }
    std::printf("verify passed: %llu runs, summaries bit-identical\n",
                static_cast<unsigned long long>(summary_a.runs));
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
        printHelp(stdout);
        return kExitOk;
    }
    // Shift so each subcommand parses only its own flags.
    argc -= 1;
    argv += 1;
    if (command == "run")
        return cmdRun(argc, argv);
    if (command == "resume")
        return cmdResume(argc, argv);
    if (command == "merge")
        return cmdMerge(argc, argv);
    if (command == "verify")
        return cmdVerify(argc, argv);
    return usage();
}
