/**
 * @file
 * A full-featured command-line simulator: configure the mesh, the
 * router micro-architecture, the routing algorithm, and the traffic;
 * optionally inject a fault; run with NoCAlert and the recovery
 * policy attached; print statistics, the alert summary, and (with
 * --trace) the event window around the injection.
 *
 *   ./simulate --mesh 8 --vcs 4 --routing xy --pattern uniform \
 *              --rate 0.05 --cycles 5000 \
 *              [--fault r36:Sa2Grant:E:2] [--trace]
 *
 * Workload backends beyond the stationary synthetic default:
 *
 *   --phases "0:2000:uniform:0.05,2000:4000:transpose:0.1"
 *       piecewise phase program (begin:end:pattern:rate per segment,
 *       optionally :hotspotNode:hotspotFraction)
 *   --burst "64:0.5:2:0[:layers]"   MMPP-style on/off burst modulation
 *   --phase-repeat                  wrap the program instead of idling
 *   --trace-replay <file>           replay a recorded injection trace
 *   --record-trace <file>           record this run's injections
 */

#include <cstdio>
#include <string>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "noc/network.hpp"
#include "noc/trace.hpp"
#include "recovery/policy.hpp"
#include "traffic/workload.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace nocalert;

namespace {

noc::RoutingAlgo
parseRouting(const std::string &name)
{
    if (name == "xy")
        return noc::RoutingAlgo::XY;
    if (name == "yx")
        return noc::RoutingAlgo::YX;
    if (name == "west-first")
        return noc::RoutingAlgo::WestFirst;
    if (name == "o1turn")
        return noc::RoutingAlgo::O1Turn;
    if (name == "qadaptive")
        return noc::RoutingAlgo::QAdaptive;
    NOCALERT_FATAL("unknown routing '", name,
                   "' (xy, yx, west-first, o1turn, qadaptive)");
}

noc::TrafficPattern
parsePattern(const std::string &name)
{
    if (name == "uniform")
        return noc::TrafficPattern::UniformRandom;
    if (name == "transpose")
        return noc::TrafficPattern::Transpose;
    if (name == "bit-complement")
        return noc::TrafficPattern::BitComplement;
    if (name == "hotspot")
        return noc::TrafficPattern::Hotspot;
    if (name == "tornado")
        return noc::TrafficPattern::Tornado;
    if (name == "shuffle")
        return noc::TrafficPattern::Shuffle;
    if (name == "bit-reverse")
        return noc::TrafficPattern::BitReverse;
    if (name == "neighbor")
        return noc::TrafficPattern::Neighbor;
    NOCALERT_FATAL("unknown pattern '", name, "'");
}

int
parsePort(const std::string &name)
{
    for (int p = 0; p < noc::kNumPorts; ++p)
        if (name == noc::portName(p))
            return p;
    NOCALERT_FATAL("unknown port '", name, "' (N, E, S, W, L)");
}

/** Parse "r<router>:<SignalClass>:<port>:<bit>[:vc]". */
fault::FaultSite
parseFault(const std::string &spec)
{
    std::vector<std::string> parts;
    std::string current;
    for (char ch : spec) {
        if (ch == ':') {
            parts.push_back(current);
            current.clear();
        } else {
            current += ch;
        }
    }
    parts.push_back(current);
    if (parts.size() < 4 || parts[0].size() < 2 || parts[0][0] != 'r')
        NOCALERT_FATAL("fault spec must be r<router>:<Signal>:<port>:"
                       "<bit>[:vc], got '", spec, "'");

    fault::FaultSite site;
    site.router = std::stoi(parts[0].substr(1));
    site.port = parsePort(parts[2]);
    site.bit = static_cast<unsigned>(std::stoul(parts[3]));
    site.vc = parts.size() > 4 ? std::stoi(parts[4]) : -1;

    for (int c = 0; c <= static_cast<int>(
             fault::SignalClass::StSchedOutVc); ++c) {
        const auto cls = static_cast<fault::SignalClass>(c);
        if (parts[1] == fault::signalClassName(cls)) {
            site.signal = cls;
            return site;
        }
    }
    NOCALERT_FATAL("unknown signal class '", parts[1], "'");
}

} // namespace

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"mesh", "width", "height", "vcs", "depth",
                     "routing", "pattern", "rate", "cycles", "seed",
                     "fault", "kind", "trace", "non-atomic",
                     "speculative", "dense-kernel", "kernel",
                     "phases", "burst", "phase-repeat", "trace-replay",
                     "record-trace"});

    noc::NetworkConfig config;
    config.width = static_cast<int>(
        cli.getInt("width", cli.getInt("mesh", 8)));
    config.height = static_cast<int>(
        cli.getInt("height", cli.getInt("mesh", 8)));
    config.router.numVcs =
        static_cast<unsigned>(cli.getInt("vcs", 4));
    config.router.bufferDepth =
        static_cast<unsigned>(cli.getInt("depth", 5));
    config.router.atomicBuffers = !cli.getBool("non-atomic", false);
    config.router.speculative = cli.getBool("speculative", false);
    if (config.router.numVcs == 1)
        config.router.classes = {{"data", 5}};
    config.routing = parseRouting(cli.getString("routing", "xy"));

    const noc::Cycle cycles = cli.getInt("cycles", 5000);
    const auto seed = static_cast<std::uint64_t>(cli.getInt("seed", 1));

    if (cli.has("phases") && cli.has("trace-replay"))
        NOCALERT_FATAL("--phases and --trace-replay are mutually "
                       "exclusive");
    if (cli.has("burst") && !cli.has("phases"))
        NOCALERT_FATAL("--burst requires a --phases program");

    traffic::WorkloadSpec workload;
    if (cli.has("phases")) {
        workload.kind = traffic::WorkloadKind::Phased;
        std::string error = traffic::parsePhaseProgram(
            cli.getString("phases", ""), workload.phased);
        if (!error.empty())
            NOCALERT_FATAL("bad --phases: ", error);
        if (cli.has("burst")) {
            error = traffic::parseBurstSpec(cli.getString("burst", ""),
                                            workload.phased.burst);
            if (!error.empty())
                NOCALERT_FATAL("bad --burst: ", error);
        }
        workload.phased.repeat = cli.getBool("phase-repeat", false);
    } else if (cli.has("trace-replay")) {
        workload.kind = traffic::WorkloadKind::Trace;
        workload.trace.path = cli.getString("trace-replay", "");
        std::string error;
        if (!traffic::stampTraceSpec(workload.trace, &error))
            NOCALERT_FATAL("bad --trace-replay: ", error);
    } else {
        noc::TrafficSpec traffic;
        traffic.pattern =
            parsePattern(cli.getString("pattern", "uniform"));
        traffic.injectionRate = cli.getDouble("rate", 0.05);
        workload = traffic::WorkloadSpec::fromSynthetic(traffic);
    }
    workload.setSeed(seed);
    workload.setStopCycle(cycles);
    {
        const std::string error =
            traffic::validateWorkloadSpec(config, workload);
        if (!error.empty())
            NOCALERT_FATAL("invalid workload: ", error);
    }

    if (cli.has("record-trace")) {
        const std::string path = cli.getString("record-trace", "");
        std::string error;
        if (!traffic::recordTrace(config, workload, cycles, path,
                                  &error))
            NOCALERT_FATAL("--record-trace failed: ", error);
        std::printf("recorded a %lld-cycle injection trace to %s\n",
                    static_cast<long long>(cycles), path.c_str());
    }

    noc::Network network(config, workload);
    // --kernel dense|active|bitmask selects the simulation kernel;
    // --dense-kernel is the historical spelling of --kernel dense.
    const std::string kernel = cli.getBool("dense-kernel", false)
                                   ? "dense"
                                   : cli.getString("kernel", "bitmask");
    if (kernel == "dense")
        network.setKernelMode(noc::KernelMode::Dense);
    else if (kernel == "active")
        network.setKernelMode(noc::KernelMode::Active);
    else if (kernel == "bitmask")
        network.setKernelMode(noc::KernelMode::Bitmask);
    else
        NOCALERT_FATAL("unknown --kernel '", kernel,
                       "' (dense|active|bitmask)");
    core::NoCAlertEngine engine(network);

    recovery::RecoveryController controller;
    engine.onAlert([&controller](const core::Assertion &assertion) {
        controller.onAlert(assertion);
    });
    network.setCycleObserver([&controller](const noc::Network &net) {
        controller.onCycle(net.cycle());
    });

    // Optional fault at mid-run.
    const noc::Cycle inject_at = cycles / 2;
    fault::FaultInjector injector;
    noc::TraceRecorder trace;
    const bool tracing = cli.getBool("trace", false);
    if (cli.has("fault")) {
        const fault::FaultSite site =
            parseFault(cli.getString("fault", ""));
        fault::FaultKind kind = fault::FaultKind::Transient;
        const std::string kind_name = cli.getString("kind", "transient");
        if (kind_name == "permanent")
            kind = fault::FaultKind::Permanent;
        else if (kind_name == "intermittent")
            kind = fault::FaultKind::Intermittent;
        injector.arm({site, inject_at, kind});
        injector.attach(network);
        std::printf("armed %s fault at cycle %lld: %s\n", kind_name.c_str(),
                    static_cast<long long>(inject_at),
                    site.describe().c_str());

        if (tracing) {
            // Window around the injection, focused on the victim.
            trace.setFilter([site, inject_at](
                                const noc::TraceEvent &event) {
                return event.router == site.router &&
                       event.cycle >= inject_at - 2 &&
                       event.cycle <= inject_at + 12;
            });
            network.setRouterObserver(
                [&](const noc::Router &router,
                    const noc::RouterWires &wires) {
                    engine.observeRouter(router, wires);
                    trace.observeRouter(router, wires);
                });
        }
    }

    network.run(cycles);
    const bool drained = network.drain(20000);

    const noc::NetworkStats stats = network.stats();
    std::printf("\n%s\n", stats.summary().c_str());
    std::printf("throughput: %.4f flits/node/cycle, drained: %s\n",
                stats.throughput(config.numNodes()),
                drained ? "yes" : "NO (traffic stuck)");
    std::printf("alerts: %zu", engine.log().count());
    if (auto first = engine.log().firstCycle())
        std::printf(" (first at cycle %lld)",
                    static_cast<long long>(*first));
    std::printf("\nrecovery: %s",
                recovery::responseLevelName(controller.level()));
    if (auto trig = controller.trigger()) {
        std::printf(" — checker %u at router %d",
                    core::invariantIndex(trig->trigger), trig->router);
    }
    std::printf("\n");

    for (core::InvariantId id : engine.log().distinctInvariants()) {
        std::printf("  invariant %2u (%s): %llu assertions\n",
                    core::invariantIndex(id), core::invariantName(id),
                    static_cast<unsigned long long>(
                        engine.log().countFor(id)));
    }

    if (tracing && !trace.events().empty()) {
        std::printf("\ntrace around the injection:\n%s",
                    trace.dump().c_str());
    }
    return 0;
}
