/**
 * @file
 * Quickstart: build an 8x8 mesh with NoCAlert attached, run uniform
 * random traffic, then inject a single transient fault and watch the
 * checkers catch it in real time.
 *
 *   ./quickstart [--width N] [--height N] [--rate R] [--cycles N]
 */

#include <cstdio>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "noc/network.hpp"
#include "util/cli.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv,
                    {"width", "height", "rate", "cycles", "seed"});

    noc::NetworkConfig config;
    config.width = static_cast<int>(cli.getInt("width", 8));
    config.height = static_cast<int>(cli.getInt("height", 8));

    noc::TrafficSpec traffic;
    traffic.injectionRate = cli.getDouble("rate", 0.05);
    traffic.seed = static_cast<std::uint64_t>(cli.getInt("seed", 42));

    const noc::Cycle cycles = cli.getInt("cycles", 2000);

    // ---- Phase 1: fault-free operation ----
    noc::Network network(config, traffic);
    core::NoCAlertEngine nocalert(network);

    network.run(cycles);
    const noc::NetworkStats clean = network.stats();
    std::printf("fault-free: %s\n", clean.summary().c_str());
    std::printf("fault-free alerts: %zu (expected 0)\n\n",
                nocalert.log().count());

    // ---- Phase 2: inject one transient fault ----
    // Flip one bit of an SA2 grant vector at the mesh center: the
    // switch forwards a flit nobody arbitrated for.
    fault::FaultSite site;
    site.router = config.nodeAt({config.width / 2, config.height / 2});
    site.signal = fault::SignalClass::Sa2Grant;
    site.port = noc::portIndex(noc::Port::East);
    site.bit = 2; // input port South

    fault::FaultInjector injector;
    injector.arm({site, network.cycle(), fault::FaultKind::Transient});
    injector.attach(network);

    nocalert.onAlert([](const core::Assertion &assertion) {
        std::printf("  ALERT cycle=%lld router=%d invariant=%u (%s)\n",
                    static_cast<long long>(assertion.cycle),
                    assertion.router,
                    core::invariantIndex(assertion.id),
                    core::invariantName(assertion.id));
    });

    std::printf("injecting %s at cycle %lld...\n",
                site.describe().c_str(),
                static_cast<long long>(network.cycle()));
    network.run(50);

    std::printf("\nalerts raised: %zu\n", nocalert.log().count());
    if (auto first = nocalert.log().firstCycle()) {
        std::printf("first detection latency: %lld cycle(s)\n",
                    static_cast<long long>(*first) -
                        (network.cycle() - 50));
    }
    return 0;
}
