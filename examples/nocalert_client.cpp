/**
 * @file
 * Command-line client of the campaign service (nocalert_serve).
 *
 *   nocalert_client ping     --socket PATH
 *   nocalert_client submit   --socket PATH [campaign flags] [--wait]
 *                            [--out FILE] [--detach] [--spec FILE]
 *   nocalert_client status   --socket PATH ID
 *   nocalert_client watch    --socket PATH ID
 *   nocalert_client cancel   --socket PATH ID
 *   nocalert_client result   --socket PATH ID [--out FILE]
 *   nocalert_client list     --socket PATH
 *   nocalert_client stats    --socket PATH
 *   nocalert_client shutdown --socket PATH
 *   nocalert_client help
 *
 * `submit` accepts the same campaign flags with the same defaults as
 * `campaign_shard run` (--mesh, --sites, --rate, --seed, --warmup,
 * --kind, --recovery, --dense-kernel, --shard, and the --sample
 * family), so submitting with the flags of a batch invocation yields a
 * served artifact byte-identical to that invocation's output file.
 * `--spec FILE` instead reads a serialized campaign config (e.g. the
 * `config` block of an artifact). `--wait` stays connected, streams
 * telemetry to stderr until the campaign finishes, then fetches the
 * artifact (to --out, or stdout). A waiting submission is *attached*:
 * killing the client cancels the campaign (checkpointed, resumable);
 * a plain submit detaches and the campaign keeps running.
 *
 * `--retries N` (with `--retry-base-ms MS`) makes the client resilient
 * to a daemon crash or restart: connection attempts and mid-exchange
 * drops back off exponentially (with jitter) and reconnect up to N
 * times. Because a campaign id is the identity hash of its config, a
 * waiting submission simply re-submits after reconnecting — it joins
 * the requeued campaign (or finds it complete in the cache) instead of
 * forking a duplicate, and resumes watching.
 *
 * Exit status: 0 success; 1 server reported an error (or the campaign
 * failed/was cancelled); 2 usage error; 3 cannot connect.
 */

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <random>
#include <sstream>
#include <string>
#include <thread>

#include "fault/campaign.hpp"
#include "fault/serialize.hpp"
#include "serve/protocol.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace nocalert;

namespace {

constexpr int kExitOk = 0;
constexpr int kExitServerError = 1;
constexpr int kExitUsage = 2;
constexpr int kExitConnect = 3;

void
printHelp(std::FILE *to)
{
    std::fprintf(
        to,
        "usage: nocalert_client <command> --socket PATH [options]\n"
        "\n"
        "  ping                  liveness probe\n"
        "  submit [flags]        submit a campaign; same campaign\n"
        "                        flags and defaults as campaign_shard\n"
        "                        run (--mesh --sites --rate --seed\n"
        "                        --warmup --kind --recovery\n"
        "                        --dense-kernel --shard i/N and the\n"
        "                        --sample family), or --spec FILE with\n"
        "                        a serialized config\n"
        "         --wait         stream progress until finished, then\n"
        "                        fetch the artifact (--out FILE or\n"
        "                        stdout); attached: killing the client\n"
        "                        cancels the campaign\n"
        "         --detach       keep the campaign running after this\n"
        "                        client disconnects (default when not\n"
        "                        waiting)\n"
        "  status ID             one-shot progress query\n"
        "  watch ID              stream telemetry until terminal\n"
        "  cancel ID             cooperative cancel (checkpointed)\n"
        "  result ID [--out F]   fetch the finished artifact\n"
        "  list                  enumerate known campaigns\n"
        "  stats                 server counters (cache hits, runs)\n"
        "  shutdown              stop the daemon cleanly\n"
        "\n"
        "  --retries N           reconnect/resubmit up to N times on\n"
        "                        connect failure or mid-exchange drop\n"
        "                        (default 0: fail fast)\n"
        "  --retry-base-ms MS    first backoff; doubles per attempt,\n"
        "                        jittered, capped at 5 s (default 100)\n");
}

/** Blocking NDJSON connection to the daemon. */
class Connection
{
  public:
    ~Connection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connect(const std::string &path, std::string *error)
    {
        if (fd_ >= 0) {
            ::close(fd_);
            fd_ = -1;
        }
        framer_ = serve::LineFramer(); // A new stream, a new framing.
        sockaddr_un address{};
        address.sun_family = AF_UNIX;
        if (path.size() >= sizeof(address.sun_path)) {
            *error = "socket path too long: '" + path + "'";
            return false;
        }
        std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd_ < 0) {
            *error = std::string("socket: ") + std::strerror(errno);
            return false;
        }
        if (::connect(fd_, reinterpret_cast<const sockaddr *>(&address),
                      sizeof(address)) != 0) {
            *error = "connect '" + path + "': " + std::strerror(errno);
            ::close(fd_);
            fd_ = -1;
            return false;
        }
        return true;
    }

    bool send(const JsonValue &request)
    {
        std::string line = request.dump() + "\n";
        std::string_view rest = line;
        while (!rest.empty()) {
            const ssize_t sent =
                ::send(fd_, rest.data(), rest.size(), MSG_NOSIGNAL);
            if (sent < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            rest.remove_prefix(static_cast<std::size_t>(sent));
        }
        return true;
    }

    /** Next response line as parsed JSON; nullopt on EOF. */
    std::optional<JsonValue> read()
    {
        for (;;) {
            if (const auto line = framer_.next()) {
                if (line->oversized)
                    continue;
                auto json = parseJson(line->text);
                if (json)
                    return json;
                continue; // Skip unparseable noise defensively.
            }
            char buffer[4096];
            const ssize_t got = ::recv(fd_, buffer, sizeof(buffer), 0);
            if (got < 0 && errno == EINTR)
                continue;
            if (got <= 0)
                return std::nullopt;
            framer_.feed(std::string_view(
                buffer, static_cast<std::size_t>(got)));
        }
    }

  private:
    int fd_ = -1;
    serve::LineFramer framer_;
};

/** Reconnect policy (--retries / --retry-base-ms). */
struct RetryPolicy
{
    unsigned retries = 0;  ///< Extra attempts after the first.
    unsigned baseMs = 100; ///< First backoff; doubles per attempt.
};

/** Sleep attempt @p attempt's backoff: base * 2^attempt capped at
 *  5 s, jittered ±25% so clients restarted together do not hammer a
 *  recovering daemon in lockstep. */
void
backoffSleep(const RetryPolicy &policy, unsigned attempt)
{
    static std::mt19937 rng(
        static_cast<std::mt19937::result_type>(::getpid()) ^
        static_cast<std::mt19937::result_type>(
            std::chrono::steady_clock::now()
                .time_since_epoch()
                .count()));
    const double base = static_cast<double>(policy.baseMs) *
                        static_cast<double>(1u << std::min(attempt, 16u));
    std::uniform_real_distribution<double> jitter(0.75, 1.25);
    const double ms = std::min(base, 5000.0) * jitter(rng);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(ms));
}

/** A connection plus the coordinates to rebuild it after a drop. */
struct ServiceLink
{
    Connection conn;
    std::string path;
    RetryPolicy policy;
};

/** Connect with bounded exponential backoff. */
bool
connectWithRetry(ServiceLink &link, std::string *error)
{
    for (unsigned attempt = 0;; ++attempt) {
        if (link.conn.connect(link.path, error))
            return true;
        if (attempt >= link.policy.retries)
            return false;
        std::fprintf(stderr,
                     "nocalert_client: %s; retrying (%u/%u)\n",
                     error->c_str(), attempt + 1, link.policy.retries);
        backoffSleep(link.policy, attempt);
    }
}

std::string
stringMember(const JsonValue &json, const char *key)
{
    const JsonValue *value = json.find(key);
    return value && value->isString() ? value->string() : std::string();
}

/** Print an error response and convert it to an exit code. */
int
reportError(const JsonValue &response)
{
    std::fprintf(stderr, "error [%s]: %s\n",
                 stringMember(response, "code").c_str(),
                 stringMember(response, "message").c_str());
    return kExitServerError;
}

bool
isType(const JsonValue &json, std::string_view type)
{
    return stringMember(json, "type") == type;
}

/**
 * One request, one response, transparently reconnecting (bounded
 * backoff) when the transport dies mid-exchange. Every request the
 * client sends is idempotent — submit's id is the config's identity
 * hash, so even a retried submit lands on the same campaign. Exits
 * the process once every attempt is exhausted.
 */
JsonValue
roundTrip(ServiceLink &link, const JsonValue &request)
{
    for (unsigned attempt = 0;; ++attempt) {
        if (link.conn.send(request)) {
            if (auto response = link.conn.read())
                return std::move(*response);
        }
        if (attempt >= link.policy.retries)
            NOCALERT_FATAL("connection lost mid-request (",
                           link.policy.retries, " retries exhausted)");
        std::fprintf(stderr, "nocalert_client: connection lost;"
                             " reconnecting (%u/%u)\n",
                     attempt + 1, link.policy.retries);
        backoffSleep(link.policy, attempt);
        std::string error;
        if (!connectWithRetry(link, &error))
            NOCALERT_FATAL("reconnect failed: ", error);
    }
}

JsonValue
makeRequest(const char *type)
{
    JsonValue json;
    json.set("type", type);
    return json;
}

JsonValue
makeIdRequest(const char *type, const std::string &id)
{
    JsonValue json = makeRequest(type);
    json.set("id", id);
    return json;
}

/** Build a campaign config from `campaign_shard run`-style flags. */
fault::CampaignConfig
configFromFlags(const CommandLine &cli)
{
    fault::CampaignConfig config;
    config.network.width = static_cast<int>(cli.getInt("mesh", 4));
    config.network.height = config.network.width;
    config.workload.synthetic.injectionRate = cli.getDouble("rate", 0.05);
    config.workload.synthetic.seed =
        static_cast<std::uint64_t>(cli.getInt("seed", 3));
    config.warmup = cli.getInt("warmup", 200);
    config.maxSites = static_cast<unsigned>(cli.getInt("sites", 120));
    config.denseKernel = cli.getBool("dense-kernel", false);
    config.recovery = cli.getBool("recovery", false);
    const std::string kind = cli.getString("kind", "transient");
    if (auto k = fault::faultKindFromName(kind))
        config.kind = *k;
    else
        NOCALERT_FATAL("unknown fault kind '", kind, "'");

    const std::string shard = cli.getString("shard", "0/1");
    const std::size_t slash = shard.find('/');
    if (slash == std::string::npos)
        NOCALERT_FATAL("--shard expects i/N, got '", shard, "'");
    try {
        config.shardIndex = static_cast<unsigned>(
            std::stoul(shard.substr(0, slash)));
        config.shardCount = static_cast<unsigned>(
            std::stoul(shard.substr(slash + 1)));
    } catch (...) {
        NOCALERT_FATAL("--shard expects i/N, got '", shard, "'");
    }

    if (cli.getBool("sample", false)) {
        fault::SamplingSpec &sampling = config.sampling;
        sampling.enabled = true;
        sampling.ciHalfWidth = cli.getDouble("ci-width", 0.05);
        sampling.maxRuns =
            static_cast<std::uint64_t>(cli.getInt("max-runs", 0));
        sampling.batchSize =
            static_cast<unsigned>(cli.getInt("batch", 64));
        sampling.confidence = cli.getDouble("confidence", 0.95);
        sampling.cycleJitter = cli.getInt("cycle-jitter", 0);
        sampling.seedCount =
            static_cast<unsigned>(cli.getInt("seeds", 1));
        sampling.samplerSeed =
            static_cast<std::uint64_t>(cli.getInt("sampler-seed", 1));
        const std::string stratify =
            cli.getString("stratify", "signal-class");
        if (auto mode = fault::stratifyFromName(stratify))
            sampling.stratify = *mode;
        else
            NOCALERT_FATAL("unknown stratification '", stratify, "'");
        const std::string method = cli.getString("ci-method", "wilson");
        if (auto m = stats::intervalMethodFromName(method))
            sampling.method = *m;
        else
            NOCALERT_FATAL("unknown interval method '", method, "'");
    }
    return config;
}

void
printStatusLine(const JsonValue &response)
{
    const JsonValue *completed = response.find("runsCompleted");
    const JsonValue *planned = response.find("runsPlanned");
    const std::string failure = stringMember(response, "failure");
    const std::string suffix =
        failure.empty() ? std::string() : " (" + failure + ")";
    std::printf("%s %s %llu/%llu%s\n",
                stringMember(response, "id").c_str(),
                stringMember(response, "state").c_str(),
                completed && completed->isNumber()
                    ? static_cast<unsigned long long>(completed->asUint())
                    : 0ULL,
                planned && planned->isNumber()
                    ? static_cast<unsigned long long>(planned->asUint())
                    : 0ULL,
                suffix.c_str());
}

/** Write the artifact from a result response; false on any problem. */
bool
emitArtifact(const JsonValue &response, const std::string &out)
{
    const JsonValue *artifact = response.find("artifact");
    if (!artifact || !artifact->isString())
        return false;
    if (out.empty()) {
        std::fwrite(artifact->string().data(), 1,
                    artifact->string().size(), stdout);
        return true;
    }
    std::ofstream file(out, std::ios::binary | std::ios::trunc);
    file.write(artifact->string().data(),
               static_cast<std::streamsize>(artifact->string().size()));
    return file.good();
}

/** Stream watch events for @p id until the terminal done event.
 *  Returns the terminal state name; an empty string when the server
 *  rejected the watch (already reported); nullopt on transport death
 *  (retryable: reconnect and watch again). */
std::optional<std::string>
streamWatch(Connection &conn, const std::string &id)
{
    if (!conn.send(makeIdRequest("watch", id)))
        return std::nullopt;
    for (;;) {
        auto event = conn.read();
        if (!event)
            return std::nullopt;
        if (isType(*event, "error")) {
            reportError(*event);
            return std::string();
        }
        if (isType(*event, "telemetry")) {
            const JsonValue *completed = event->find("runsCompleted");
            const JsonValue *planned = event->find("runsPlanned");
            const JsonValue *rate = event->find("runsPerSecond");
            std::fprintf(
                stderr, "%s: %llu/%llu runs (%.1f runs/s)\n",
                id.c_str(),
                completed ? static_cast<unsigned long long>(
                                completed->asUint())
                          : 0ULL,
                planned ? static_cast<unsigned long long>(
                              planned->asUint())
                        : 0ULL,
                rate && rate->isNumber() ? rate->asDouble() : 0.0);
            continue;
        }
        if (isType(*event, "done"))
            return stringMember(*event, "state");
        // "watching" ack and anything unknown: keep streaming.
    }
}

int
cmdSubmit(ServiceLink &link, const CommandLine &cli)
{
    fault::CampaignConfig config;
    const std::string spec_path = cli.getString("spec", "");
    if (!spec_path.empty()) {
        std::ifstream file(spec_path, std::ios::binary);
        if (!file)
            NOCALERT_FATAL("cannot read spec file '", spec_path, "'");
        std::ostringstream text;
        text << file.rdbuf();
        std::string parse_error;
        const auto json = parseJson(text.str(), &parse_error);
        if (!json)
            NOCALERT_FATAL("spec '", spec_path, "': ", parse_error);
        std::string config_error;
        const auto parsed =
            fault::campaignConfigFromJson(*json, &config_error);
        if (!parsed)
            NOCALERT_FATAL("spec '", spec_path, "': ", config_error);
        config = *parsed;
    } else {
        config = configFromFlags(cli);
    }

    const bool wait = cli.getBool("wait", false);
    // A waiting client is attached (dying cancels the campaign);
    // a fire-and-forget submit detaches unless overridden.
    const bool detach = cli.getBool("detach", !wait);

    JsonValue request = makeRequest("submit");
    request.set("config", fault::toJson(config));
    request.set("detach", detach);

    // Submit → watch, resubmitting after a mid-stream drop. The
    // resubmission is idempotent: the id is the config's identity
    // hash, so it joins the (journal-recovered) campaign or finds it
    // already complete in the cache — never a duplicate run.
    std::string id;
    std::string terminal;
    for (unsigned attempt = 0;; ++attempt) {
        const JsonValue response = roundTrip(link, request);
        if (isType(response, "error"))
            return reportError(response);
        id = stringMember(response, "id");
        const std::string state = stringMember(response, "state");
        const JsonValue *cached = response.find("cached");
        std::fprintf(stderr, "submitted %s: %s%s\n", id.c_str(),
                     state.c_str(),
                     cached && cached->isBool() && cached->boolean()
                         ? " (served from cache)"
                         : "");
        if (!wait) {
            std::printf("%s\n", id.c_str());
            return kExitOk;
        }
        if (state == "complete") {
            terminal = state;
            break;
        }
        const auto watched = streamWatch(link.conn, id);
        if (watched) {
            if (watched->empty())
                return kExitServerError; // Server rejected the watch.
            terminal = *watched;
            break;
        }
        if (attempt >= link.policy.retries)
            return kExitServerError;
        std::fprintf(stderr, "nocalert_client: connection lost;"
                             " resubmitting %s (%u/%u)\n",
                     id.c_str(), attempt + 1, link.policy.retries);
        backoffSleep(link.policy, attempt);
        std::string error;
        if (!connectWithRetry(link, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return kExitServerError;
        }
    }
    if (terminal != "complete") {
        std::fprintf(stderr, "campaign %s: %s\n", id.c_str(),
                     terminal.c_str());
        return kExitServerError;
    }
    const JsonValue result = roundTrip(link, makeIdRequest("result", id));
    if (isType(result, "error"))
        return reportError(result);
    if (!emitArtifact(result, cli.getString("out", ""))) {
        std::fprintf(stderr, "error: cannot write artifact\n");
        return kExitServerError;
    }
    return kExitOk;
}

int
cmdWatch(ServiceLink &link, const std::string &id)
{
    for (unsigned attempt = 0;; ++attempt) {
        const auto terminal = streamWatch(link.conn, id);
        if (terminal) {
            if (terminal->empty())
                return kExitServerError;
            std::printf("%s\n", terminal->c_str());
            return *terminal == "complete" ? kExitOk
                                           : kExitServerError;
        }
        if (attempt >= link.policy.retries)
            return kExitServerError;
        std::fprintf(stderr, "nocalert_client: connection lost;"
                             " re-watching %s (%u/%u)\n",
                     id.c_str(), attempt + 1, link.policy.retries);
        backoffSleep(link.policy, attempt);
        std::string error;
        if (!connectWithRetry(link, &error)) {
            std::fprintf(stderr, "error: %s\n", error.c_str());
            return kExitServerError;
        }
    }
}

int
cmdResult(ServiceLink &link, const std::string &id,
          const std::string &out)
{
    const JsonValue response =
        roundTrip(link, makeIdRequest("result", id));
    if (isType(response, "error"))
        return reportError(response);
    if (!emitArtifact(response, out)) {
        std::fprintf(stderr, "error: cannot write artifact\n");
        return kExitServerError;
    }
    return kExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printHelp(stderr);
        return kExitUsage;
    }
    const std::string command = argv[1];
    if (command == "help" || command == "--help" || command == "-h") {
        printHelp(stdout);
        return kExitOk;
    }

    const CommandLine cli(
        argc - 1, argv + 1,
        {"socket", "out", "spec", "wait", "detach", "mesh", "sites",
         "rate", "seed", "warmup", "kind", "recovery", "dense-kernel",
         "shard", "sample", "ci-width", "max-runs", "batch",
         "confidence", "stratify", "ci-method", "cycle-jitter", "seeds",
         "sampler-seed", "retries", "retry-base-ms"},
        /*allow_positionals=*/true);

    const std::string socket_path = cli.getString("socket", "");
    if (socket_path.empty()) {
        std::fprintf(stderr,
                     "error: %s requires --socket PATH\n",
                     command.c_str());
        return kExitUsage;
    }

    ServiceLink link;
    link.path = socket_path;
    link.policy.retries =
        static_cast<unsigned>(cli.getInt("retries", 0));
    link.policy.baseMs =
        static_cast<unsigned>(cli.getInt("retry-base-ms", 100));
    std::string error;
    if (!connectWithRetry(link, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return kExitConnect;
    }

    auto idArg = [&cli, &command]() -> std::string {
        if (cli.positionals().empty()) {
            std::fprintf(stderr, "error: %s requires a campaign ID\n",
                         command.c_str());
            std::exit(kExitUsage);
        }
        return cli.positionals().front();
    };

    if (command == "ping") {
        const JsonValue response = roundTrip(link, makeRequest("ping"));
        if (isType(response, "error"))
            return reportError(response);
        std::printf("pong\n");
        return kExitOk;
    }
    if (command == "submit")
        return cmdSubmit(link, cli);
    if (command == "status") {
        const JsonValue response =
            roundTrip(link, makeIdRequest("status", idArg()));
        if (isType(response, "error"))
            return reportError(response);
        printStatusLine(response);
        return kExitOk;
    }
    if (command == "watch")
        return cmdWatch(link, idArg());
    if (command == "cancel") {
        const JsonValue response =
            roundTrip(link, makeIdRequest("cancel", idArg()));
        if (isType(response, "error"))
            return reportError(response);
        std::printf("cancelled %s\n",
                    stringMember(response, "id").c_str());
        return kExitOk;
    }
    if (command == "result")
        return cmdResult(link, idArg(), cli.getString("out", ""));
    if (command == "list") {
        const JsonValue response = roundTrip(link, makeRequest("list"));
        if (isType(response, "error"))
            return reportError(response);
        const JsonValue *campaigns = response.find("campaigns");
        if (campaigns && campaigns->isArray()) {
            for (const JsonValue &one : campaigns->array())
                printStatusLine(one);
        }
        return kExitOk;
    }
    if (command == "stats") {
        const JsonValue response = roundTrip(link, makeRequest("stats"));
        if (isType(response, "error"))
            return reportError(response);
        for (const auto &[key, value] : response.object()) {
            if (key == "type")
                continue;
            std::printf("%-20s %llu\n", key.c_str(),
                        static_cast<unsigned long long>(value.asUint()));
        }
        return kExitOk;
    }
    if (command == "shutdown") {
        const JsonValue response =
            roundTrip(link, makeRequest("shutdown"));
        if (isType(response, "error"))
            return reportError(response);
        std::printf("server shutting down\n");
        return kExitOk;
    }

    printHelp(stderr);
    return kExitUsage;
}
