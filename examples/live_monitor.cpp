/**
 * @file
 * Live monitoring with the recovery policy engine: demonstrates how a
 * fault recovery/reconfiguration mechanism couples to NoCAlert (the
 * paper's intended deployment). The policy implements the paper's
 * observations — the Cautious state for the low-risk checkers
 * (invariants 1/3, Observation 2) and persistence filtering for
 * invariant 5 (Observation 3) — and hands the user a module-level
 * fault locus when it triggers.
 *
 *   ./live_monitor [--kind transient|permanent|intermittent]
 */

#include <cstdio>
#include <string>

#include "core/nocalert.hpp"
#include "fault/injector.hpp"
#include "noc/network.hpp"
#include "recovery/policy.hpp"
#include "util/cli.hpp"

using namespace nocalert;

int
main(int argc, char **argv)
{
    CommandLine cli(argc, argv, {"kind", "rate", "cycles"});
    const std::string kind_name = cli.getString("kind", "permanent");

    fault::FaultKind kind = fault::FaultKind::Permanent;
    if (kind_name == "transient")
        kind = fault::FaultKind::Transient;
    else if (kind_name == "intermittent")
        kind = fault::FaultKind::Intermittent;

    noc::NetworkConfig config;
    noc::TrafficSpec traffic;
    traffic.injectionRate = cli.getDouble("rate", 0.05);

    noc::Network network(config, traffic);
    core::NoCAlertEngine engine(network);

    // ---- Couple the recovery policy to the alert stream ----
    recovery::RecoveryController controller;
    controller.onTrigger([](const recovery::RecoveryEvent &event) {
        std::printf("  [recovery] cycle %lld: TRIGGERED by checker %u "
                    "(%s) at router %d port %s vc %d -> reconfigure/"
                    "drain here\n",
                    static_cast<long long>(event.cycle),
                    core::invariantIndex(event.trigger),
                    core::invariantName(event.trigger), event.router,
                    noc::portName(event.port), event.vc);
    });
    engine.onAlert([&controller](const core::Assertion &assertion) {
        const core::InvariantInfo &info =
            core::invariantInfo(assertion.id);
        std::printf("  [alert] cycle %lld: checker %u (%s) at router "
                    "%d (risk: %s)\n",
                    static_cast<long long>(assertion.cycle),
                    core::invariantIndex(assertion.id), info.name,
                    assertion.router,
                    info.risk == core::RiskLevel::Low ? "low"
                    : info.risk == core::RiskLevel::PermanentSensitive
                        ? "permanent-sensitive"
                        : "standard");
        controller.onAlert(assertion);
    });
    network.setCycleObserver([&controller](const noc::Network &net) {
        controller.onCycle(net.cycle());
    });

    network.run(1000);
    std::printf("warmed up: %s\n", network.stats().summary().c_str());
    std::printf("recovery level: %s\n\n",
                recovery::responseLevelName(controller.level()));

    // A stuck arbiter grant line: forced high it grants a client that
    // never requested (invariant 4); forced low it silently skips a
    // requester (invariant 5 — a NOP when transient, a stuck arbiter
    // when permanent). Both symptoms localize to the same module.
    fault::FaultSite site;
    site.router = config.nodeAt({4, 4});
    site.signal = fault::SignalClass::Sa1Grant;
    site.port = noc::portIndex(noc::Port::West);
    site.bit = 0;

    std::printf("injecting %s fault: %s\n", kind_name.c_str(),
                site.describe().c_str());
    fault::FaultInjector injector;
    injector.arm({site, network.cycle(), kind, /*period=*/40,
                  /*duty=*/4});
    injector.attach(network);

    network.run(cli.getInt("cycles", 3000));

    std::printf("\ntotal alerts: %zu, recovery level: %s\n",
                engine.log().count(),
                recovery::responseLevelName(controller.level()));
    std::printf("(standard-risk checkers trigger recovery on the "
                "first assertion with a module-level locus; a "
                "permanent fault keeps the flag raised every cycle — "
                "the paper's transient/permanent distinction, "
                "Section 5.2)\n");
    return 0;
}
